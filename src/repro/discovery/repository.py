"""The repository of named tables (the "data lake"): in-memory or disk-backed.

A :class:`DataRepository` can hold its tables fully decoded in RAM (the
original behaviour, still what ``DataRepository(tables)`` gives you) or be
opened over a directory of native binary table files
(:meth:`DataRepository.open`).  A disk-backed repository builds its catalog
from file *headers* only — names, schemas, row counts, content fingerprints —
and materialises tables lazily on first :meth:`get`, memory-mapped so even a
"loaded" table only pages in the columns that are actually read.  Decoded
tables are kept alive in a small LRU so hot candidates stay warm while a
100-table repository never holds 100 decoded tables.

The :class:`ProfileCache` rides along: besides the identity-validated
in-memory entries it has always had, entries can now be validated by a
table's *content fingerprint* (stored in every table file header) and
persisted to a sidecar file, so a repeated ``ARDA`` run over the same
repository serves every discovery profile from disk without touching a single
table body.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.discovery.profiles import ColumnProfile, profile_table
from repro.relational.io import read_csv
from repro.relational.persist import (
    TableHeader,
    atomic_replace,
    read_table,
    read_table_header,
    table_fingerprint,
    write_table,
)
from repro.relational.table import Table

TABLE_SUFFIX = ".tbl"
PROFILE_SIDECAR = "_profiles.cache"
_SIDECAR_FORMAT = "arda-profile-cache"
_SIDECAR_VERSION = 1


class ProfileCache:
    """Memoised column profiles (including MinHash signatures) per table.

    Join discovery profiles every repository column on every run; on repeated
    :meth:`ARDA.augment` calls or multi-scenario sweeps over the same
    repository this dominates discovery time.  The cache stores the full
    per-table profile dictionary keyed by ``(table name, num_hashes)``.

    Entries are validated two ways:

    * **object identity** — tables are immutable by convention, so as long as
      a repository slot still holds the same object the cached profiles are
      exact (the original scheme, used for in-memory tables);
    * **content fingerprint** — the hex fingerprint stored in every binary
      table file header (see :func:`repro.relational.persist.table_fingerprint`).
      Fingerprint-validated entries survive process restarts: :meth:`save`
      writes them to a sidecar file and :meth:`load` brings them back, and an
      entry whose fingerprint no longer matches the table on disk is simply a
      miss (then dropped by :meth:`prune_fingerprints` on the next open).

    ``hits`` / ``misses`` / ``invalidations`` counters are exposed so callers
    (and tests) can assert that re-profiling was actually skipped.  Entry and
    counter updates take an internal lock: the cache is shared with
    :class:`~repro.core.executor.ThreadJoinExecutor` workers, and unlocked
    ``+= 1`` counter updates from several threads lose increments.  Profiling
    itself runs outside the lock so concurrent misses on different tables
    don't serialise; two simultaneous misses on the *same* table may both
    profile, and the last store wins (profiles are deterministic, so both are
    identical).
    """

    def __init__(self):
        # (table name, num_hashes) -> (table or None, fingerprint or None, profiles)
        self._entries: dict[
            tuple[str, int], tuple[Table | None, str | None, dict[str, ColumnProfile]]
        ] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def get_or_profile(self, table: Table, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Return cached profiles for ``table``, profiling it on first sight.

        A fingerprint-validated entry (e.g. loaded from a sidecar) is checked
        by fingerprinting ``table``; on a match the entry is re-bound to the
        object so subsequent lookups take the O(1) identity path.
        """
        key = (table.name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            cached_table, cached_fp, profiles = entry
            if cached_table is table:
                with self._lock:
                    self.hits += 1
                return profiles
            if cached_table is None and cached_fp is not None:
                if table_fingerprint(table) == cached_fp:
                    with self._lock:
                        self.hits += 1
                        self._entries[key] = (table, cached_fp, profiles)
                    return profiles
        with self._lock:
            self.misses += 1
        profiles = profile_table(table, num_hashes=num_hashes)
        with self._lock:
            self._entries[key] = (table, None, profiles)
        return profiles

    def get_or_profile_keyed(
        self,
        name: str,
        fingerprint: str,
        loader: Callable[[], Table],
        num_hashes: int = 64,
    ) -> dict[str, ColumnProfile]:
        """Fingerprint-validated lookup that only loads the table on a miss.

        This is the disk-backed repository's path: on a hit the table body is
        never read — the catalog header supplies the fingerprint and the
        profiles come straight from the cache.
        """
        key = (name, num_hashes)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[1] == fingerprint:
                self.hits += 1
                return entry[2]
            self.misses += 1
        profiles = profile_table(loader(), num_hashes=num_hashes)
        with self._lock:
            # no table reference: the LRU owns decoded-table lifetime
            self._entries[key] = (None, fingerprint, profiles)
        return profiles

    def invalidate(self, table_name: str | None = None) -> int:
        """Drop cached profiles for one table (or all); returns entries dropped."""
        with self._lock:
            if table_name is None:
                stale = list(self._entries)
            else:
                stale = [key for key in self._entries if key[0] == table_name]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def prune_fingerprints(self, live: dict[str, str]) -> int:
        """Drop fingerprint-validated entries that no longer match ``live``.

        ``live`` maps table name to current on-disk fingerprint; entries for
        unknown names or stale fingerprints are removed (counted as
        invalidations).  Identity-validated entries are left alone.
        """
        with self._lock:
            stale = [
                key
                for key, (table, fp, _profiles) in self._entries.items()
                if table is None and fp is not None and live.get(key[0]) != fp
            ]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    # -- sidecar persistence ---------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Persist all entries to a sidecar file; returns entries written.

        Identity-validated entries are fingerprinted on the way out (one pass
        over the table bytes) so they can be re-validated by a future process
        that holds different objects.  The write is atomic (uniquely-named
        temp file + ``os.replace``, so concurrent savers never interleave).
        """
        path = Path(path)
        with self._lock:
            snapshot = dict(self._entries)
        records = []
        for (name, num_hashes), (table, fingerprint, profiles) in snapshot.items():
            if fingerprint is None:
                if table is None:
                    continue
                fingerprint = table_fingerprint(table)
            records.append(
                {
                    "table": name,
                    "num_hashes": num_hashes,
                    "fingerprint": fingerprint,
                    "profiles": {
                        col: profile.to_state() for col, profile in profiles.items()
                    },
                }
            )
        payload = {
            "format": _SIDECAR_FORMAT,
            "version": _SIDECAR_VERSION,
            "entries": records,
        }
        atomic_replace(
            path,
            lambda handle: pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL),
        )
        return len(records)

    def load(self, path: str | Path) -> int:
        """Load sidecar entries written by :meth:`save`; returns entries loaded.

        Raises ``ValueError`` on a file that is not a profile sidecar or was
        written by an incompatible version.  Loaded entries are
        fingerprint-validated, so a stale sidecar only costs cache misses,
        never wrong profiles.
        """
        path = Path(path)
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or payload.get("format") != _SIDECAR_FORMAT:
            raise ValueError(f"{path}: not a profile-cache sidecar")
        if payload.get("version") != _SIDECAR_VERSION:
            raise ValueError(
                f"{path}: unsupported sidecar version {payload.get('version')!r} "
                f"(this build reads version {_SIDECAR_VERSION})"
            )
        loaded = 0
        with self._lock:
            for record in payload["entries"]:
                key = (record["table"], record["num_hashes"])
                profiles = {
                    col: ColumnProfile.from_state(state)
                    for col, state in record["profiles"].items()
                }
                self._entries[key] = (None, record["fingerprint"], profiles)
                loaded += 1
        return loaded

    def reset_counters(self) -> None:
        """Zero the hit/miss/invalidation counters (entries are kept)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def stats(self) -> dict[str, int]:
        """Counters plus current size, for reports and debugging."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _CatalogEntry:
    """One disk-backed table: its file path and header (no row data)."""

    __slots__ = ("path", "header")

    def __init__(self, path: Path, header: TableHeader):
        self.path = path
        self.header = header


class DataRepository:
    """A collection of candidate tables keyed by name.

    The repository plays the role of the heterogeneous data pool a data
    discovery system indexes; ARDA never scans it directly, it only receives
    candidate joins referencing tables by name.

    Two backing modes share one API:

    * **in-memory** — ``DataRepository(tables)`` holds decoded tables in a
      dict, exactly as before;
    * **disk-backed** — :meth:`open` catalogs a directory of ``.tbl`` files by
      reading only their headers, then loads tables lazily (memory-mapped) on
      first access with an LRU keep-alive of decoded tables.  :meth:`add`,
      :meth:`replace` and :meth:`remove` write through to the directory, and
      the profile cache can be persisted next to the tables
      (:meth:`save_profiles`), so a fresh process serves discovery profiles
      without reading any table body.

    Every repository owns a :class:`ProfileCache` so that discovery profiles
    (distinct counts, ranges, MinHash signatures) are computed once per table
    and reused across runs; mutating the repository through :meth:`replace` or
    :meth:`remove` invalidates the affected entries.
    """

    def __init__(self, tables: Iterable[Table] = (), profile_cache: ProfileCache | None = None):
        self._tables: dict[str, Table] = {}
        self._catalog: dict[str, _CatalogEntry] = {}
        self._loaded: OrderedDict[str, Table] = OrderedDict()
        self._directory: Path | None = None
        self._lru_tables: int | None = None
        self._mmap = True
        self.profile_cache = profile_cache if profile_cache is not None else ProfileCache()
        for table in tables:
            self.add(table)

    # -- disk backing ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        lru_tables: int | None = 16,
        profile_cache: ProfileCache | None = None,
        mmap: bool = True,
        load_profiles: bool = True,
    ) -> "DataRepository":
        """Open a directory of binary table files as a lazy repository.

        Builds the catalog from file headers only (names, schemas, row
        counts, fingerprints); no table body is read until :meth:`get`.
        ``lru_tables`` bounds how many decoded tables are kept alive
        (``None`` = unbounded).  If a profile sidecar is present and
        ``load_profiles`` is on, cached profiles are loaded and entries whose
        fingerprints no longer match the files are dropped.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(f"repository directory {directory} does not exist")
        if lru_tables is not None and lru_tables < 1:
            raise ValueError("lru_tables must be None or >= 1")
        repository = cls(profile_cache=profile_cache)
        repository._directory = directory
        repository._lru_tables = lru_tables
        repository._mmap = mmap
        for path in sorted(directory.glob(f"*{TABLE_SUFFIX}")):
            header = read_table_header(path)
            name = header.name or path.stem
            if name in repository._catalog:
                raise ValueError(
                    f"duplicate table name {name!r} in {directory} "
                    f"({path.name} vs {repository._catalog[name].path.name})"
                )
            repository._catalog[name] = _CatalogEntry(path, header)
        if load_profiles:
            sidecar = directory / PROFILE_SIDECAR
            if sidecar.exists():
                try:
                    repository.profile_cache.load(sidecar)
                except Exception:
                    # a stale/truncated/corrupt sidecar — whatever unpickling
                    # or record decoding raises — is a cold cache, not an
                    # error: the repository itself is healthy
                    pass
                else:
                    repository.profile_cache.prune_fingerprints(
                        {
                            name: entry.header.fingerprint
                            for name, entry in repository._catalog.items()
                        }
                    )
        return repository

    @property
    def is_disk_backed(self) -> bool:
        """Whether this repository writes through to a directory."""
        return self._directory is not None

    @property
    def directory(self) -> Path | None:
        """The backing directory of a disk-backed repository (else ``None``)."""
        return self._directory

    @property
    def cached_tables(self) -> list[str]:
        """Names of disk-backed tables currently decoded in the LRU."""
        return list(self._loaded)

    def header(self, name: str) -> TableHeader:
        """The catalog header of a disk-backed table (schema without loading)."""
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no disk-backed table named {name!r}; catalogued: {list(self._catalog)}"
            )
        return entry.header

    def schema(self, name: str):
        """The schema of a table, served without loading when disk-backed."""
        entry = self._catalog.get(name)
        if entry is not None and name not in self._tables:
            return entry.header.schema()
        return self.get(name).schema()

    def save_profiles(self, path: str | Path | None = None) -> Path:
        """Persist the profile cache to a sidecar next to the tables.

        ``path`` defaults to ``<directory>/_profiles.cache`` for disk-backed
        repositories; in-memory repositories must pass an explicit path.
        """
        if path is None:
            if self._directory is None:
                raise ValueError("in-memory repository: save_profiles needs an explicit path")
            path = self._directory / PROFILE_SIDECAR
        path = Path(path)
        self.profile_cache.save(path)
        return path

    def _store_loaded(self, name: str, table: Table) -> None:
        self._loaded[name] = table
        self._loaded.move_to_end(name)
        if self._lru_tables is not None:
            while len(self._loaded) > self._lru_tables:
                self._loaded.popitem(last=False)

    # -- mutation --------------------------------------------------------------

    def add(self, table: Table) -> None:
        """Register a table; its ``name`` must be unique and non-empty.

        In a disk-backed repository the table is also written to
        ``<directory>/<name>.tbl`` (atomically) and catalogued.
        """
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        if table.name in self._tables or table.name in self._catalog:
            raise ValueError(f"a table named {table.name!r} is already registered")
        if self._directory is not None:
            path = self._directory / f"{table.name}{TABLE_SUFFIX}"
            header = write_table(table, path)
            self._catalog[table.name] = _CatalogEntry(path, header)
            self._store_loaded(table.name, table)
        else:
            self._tables[table.name] = table

    def replace(self, table: Table) -> None:
        """Register or overwrite a table, invalidating any cached profiles.

        Disk-backed: the file is rewritten atomically (``os.replace``), so a
        previously loaded memory-mapped table keeps reading the old bytes —
        the old inode stays alive until its last mapping is dropped.
        """
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        if self._directory is not None:
            # overwrite the catalogued file in place: a table whose file stem
            # differs from its name must not leave a duplicate-named sibling
            existing = self._catalog.get(table.name)
            path = (
                existing.path
                if existing is not None
                else self._directory / f"{table.name}{TABLE_SUFFIX}"
            )
            header = write_table(table, path)
            self._catalog[table.name] = _CatalogEntry(path, header)
            self._loaded.pop(table.name, None)
            self._store_loaded(table.name, table)
        else:
            self._tables[table.name] = table
        self.profile_cache.invalidate(table.name)

    def remove(self, name: str) -> None:
        """Unregister a table, invalidating any cached profiles.

        Disk-backed: the backing file is deleted (mutations write through
        both ways, so a reopened repository sees the same contents).
        """
        if name in self._tables:
            del self._tables[name]
        elif name in self._catalog:
            entry = self._catalog.pop(name)
            self._loaded.pop(name, None)
            entry.path.unlink(missing_ok=True)
        else:
            raise KeyError(
                f"no table named {name!r} in repository; available: {self.table_names}"
            )
        self.profile_cache.invalidate(name)

    # -- access ----------------------------------------------------------------

    def get(self, name: str) -> Table:
        """Look up a table by name, materialising a disk-backed one lazily."""
        table = self._tables.get(name)
        if table is not None:
            return table
        table = self._loaded.get(name)
        if table is not None:
            self._loaded.move_to_end(name)
            return table
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(
                f"no table named {name!r} in repository; available: {self.table_names}"
            )
        table = read_table(entry.path, mmap=self._mmap)
        if not table.name:
            table = table.rename(name)
        self._store_loaded(name, table)
        return table

    def profiles(self, name: str, num_hashes: int = 64) -> dict[str, ColumnProfile]:
        """Column profiles of one table, served from the profile cache.

        For a disk-backed table the lookup is fingerprint-validated against
        the catalog header, so a cache hit never reads the table body.
        """
        entry = self._catalog.get(name)
        if entry is not None and name not in self._tables:
            return self.profile_cache.get_or_profile_keyed(
                name,
                entry.header.fingerprint,
                loader=lambda: self.get(name),
                num_hashes=num_hashes,
            )
        return self.profile_cache.get_or_profile(self.get(name), num_hashes=num_hashes)

    def __contains__(self, name: str) -> bool:
        return name in self._tables or name in self._catalog

    def __len__(self) -> int:
        return len(self._tables) + len(self._catalog)

    def __iter__(self) -> Iterator[Table]:
        for name in self.table_names:
            yield self.get(name)

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._catalog) + [n for n in self._tables if n not in self._catalog]

    # -- ingestion ---------------------------------------------------------------

    @classmethod
    def from_csv_directory(
        cls,
        directory: str | Path,
        ingest: str | Path | None = None,
        lru_tables: int | None = 16,
        mmap: bool = True,
    ) -> "DataRepository":
        """Load every ``*.csv`` file in a directory as a repository table.

        Without ``ingest`` this decodes every CSV into memory (the original
        behaviour).  With ``ingest`` set to a directory, each CSV is converted
        **once** to the native binary format (skipped when an up-to-date
        ``.tbl`` already exists) and the result is opened as a lazy
        disk-backed repository — the CSV parse cost is paid on the first run
        only.  The ingest directory mirrors the CSV directory for *ingested*
        tables: a ``.tbl`` whose header carries the CSV-ingest provenance mark
        but whose source CSV has disappeared is removed.  Tables persisted
        into the same directory by other means (``add``/``replace``/``save``)
        carry no mark and are never touched.
        """
        directory = Path(directory)
        if ingest is None:
            repository = cls()
            for path in sorted(directory.glob("*.csv")):
                repository.add(read_csv(path, name=path.stem))
            return repository
        ingest_dir = Path(ingest)
        ingest_dir.mkdir(parents=True, exist_ok=True)
        stems = set()
        for path in sorted(directory.glob("*.csv")):
            stems.add(path.stem)
            out_path = ingest_dir / f"{path.stem}{TABLE_SUFFIX}"
            # <= so a CSV rewritten within one mtime tick of its previous
            # ingest (coarse-granularity filesystems) is never served stale
            if not out_path.exists() or out_path.stat().st_mtime <= path.stat().st_mtime:
                write_table(
                    read_csv(path, name=path.stem), out_path, meta={"source": "csv-ingest"}
                )
        for orphan in ingest_dir.glob(f"*{TABLE_SUFFIX}"):
            if orphan.stem in stems:
                continue
            try:
                provenance = (read_table_header(orphan).meta or {}).get("source")
            except Exception:
                continue  # unreadable file: not ours to delete
            if provenance == "csv-ingest":
                orphan.unlink()
        return cls.open(ingest_dir, lru_tables=lru_tables, mmap=mmap)
