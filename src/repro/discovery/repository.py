"""An in-memory repository of named tables (the "data lake")."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.relational.io import read_csv
from repro.relational.table import Table


class DataRepository:
    """A collection of candidate tables keyed by name.

    The repository plays the role of the heterogeneous data pool a data
    discovery system indexes; ARDA never scans it directly, it only receives
    candidate joins referencing tables by name.
    """

    def __init__(self, tables: Iterable[Table] = ()):
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table) -> None:
        """Register a table; its ``name`` must be unique and non-empty."""
        if not table.name:
            raise ValueError("repository tables must have a non-empty name")
        if table.name in self._tables:
            raise ValueError(f"a table named {table.name!r} is already registered")
        self._tables[table.name] = table

    def get(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r} in repository; available: {self.table_names}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)

    @classmethod
    def from_csv_directory(cls, directory: str | Path) -> "DataRepository":
        """Load every ``*.csv`` file in a directory as a repository table."""
        directory = Path(directory)
        repository = cls()
        for path in sorted(directory.glob("*.csv")):
            repository.add(read_csv(path, name=path.stem))
        return repository
