"""Micro-benchmark datasets: Kraken-style telemetry, synthetic digits and noise injection.

The paper's micro benchmarks (section 7.2) take a plain classification dataset,
append 10x as many random noise columns as real columns, and measure how well
each feature selector filters the noise back out.  Ground truth about which
columns are real is therefore known by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class MicroDataset:
    """A flat classification dataset with known real/noise column labels."""

    name: str
    X: np.ndarray
    y: np.ndarray
    feature_names: list[str]
    real_mask: np.ndarray  # True for original (non-injected) columns

    @property
    def n_real(self) -> int:
        """Number of original feature columns."""
        return int(self.real_mask.sum())

    @property
    def n_noise(self) -> int:
        """Number of injected noise columns."""
        return int((~self.real_mask).sum())


def load_kraken(seed: int = 0, n_samples: int = 1000, n_sensors: int = 12) -> MicroDataset:
    """Kraken-style binary classification: sensor telemetry predicting machine failure.

    Mirrors the paper's class balance (568 negative / 432 positive out of 1000
    samples): a latent stress score drives both a subset of the sensors and the
    failure label, the remaining sensors are weakly informative usage counters.
    """
    rng = np.random.default_rng(seed)
    stress = rng.normal(size=n_samples)
    columns = []
    names = []
    for j in range(n_sensors):
        if j < 5:
            # temperature / load sensors that track the stress level
            column = stress * rng.uniform(0.7, 1.3) + 0.5 * rng.normal(size=n_samples)
        elif j < 8:
            # usage counters weakly coupled to stress
            column = 0.3 * stress + rng.normal(size=n_samples)
        else:
            # independent housekeeping statistics
            column = rng.normal(size=n_samples)
        columns.append(column)
        names.append(f"sensor_{j}")
    X = np.column_stack(columns)
    threshold = np.quantile(stress, 0.568)
    y = (stress + 0.4 * rng.normal(size=n_samples) > threshold).astype(np.float64)
    return MicroDataset(
        name="kraken",
        X=X,
        y=y,
        feature_names=names,
        real_mask=np.ones(n_sensors, dtype=bool),
    )


_DIGIT_STROKES: dict[int, list[tuple[int, int]]] = {
    # coarse 8x8 stroke templates (row, col) per digit
    0: [(1, 2), (1, 3), (1, 4), (2, 1), (2, 5), (3, 1), (3, 5), (4, 1), (4, 5), (5, 1), (5, 5), (6, 2), (6, 3), (6, 4)],
    1: [(1, 3), (2, 2), (2, 3), (3, 3), (4, 3), (5, 3), (6, 2), (6, 3), (6, 4)],
    2: [(1, 2), (1, 3), (1, 4), (2, 5), (3, 4), (4, 3), (5, 2), (6, 1), (6, 2), (6, 3), (6, 4), (6, 5)],
    3: [(1, 2), (1, 3), (1, 4), (2, 5), (3, 3), (3, 4), (4, 5), (5, 5), (6, 2), (6, 3), (6, 4)],
    4: [(1, 4), (2, 3), (2, 4), (3, 2), (3, 4), (4, 1), (4, 4), (5, 1), (5, 2), (5, 3), (5, 4), (5, 5), (6, 4)],
    5: [(1, 1), (1, 2), (1, 3), (1, 4), (2, 1), (3, 1), (3, 2), (3, 3), (4, 4), (5, 4), (6, 1), (6, 2), (6, 3)],
    6: [(1, 3), (1, 4), (2, 2), (3, 1), (4, 1), (4, 2), (4, 3), (4, 4), (5, 1), (5, 5), (6, 2), (6, 3), (6, 4)],
    7: [(1, 1), (1, 2), (1, 3), (1, 4), (1, 5), (2, 5), (3, 4), (4, 3), (5, 3), (6, 2)],
    8: [(1, 2), (1, 3), (1, 4), (2, 1), (2, 5), (3, 2), (3, 3), (3, 4), (4, 1), (4, 5), (5, 1), (5, 5), (6, 2), (6, 3), (6, 4)],
    9: [(1, 2), (1, 3), (1, 4), (2, 1), (2, 5), (3, 2), (3, 3), (3, 4), (3, 5), (4, 5), (5, 4), (6, 3)],
}


def load_digits(seed: int = 0, samples_per_class: int = 180) -> MicroDataset:
    """Synthetic 8x8 digit images: a stand-in for sklearn's ``load_digits``.

    Each sample renders a fixed stroke template for its digit with additive
    pixel noise, small random intensity and a random shift of +/-1 pixel, then
    flattens the 8x8 grid into 64 features — the same shape and class structure
    (10 classes, ~180 samples each) as the original dataset.
    """
    rng = np.random.default_rng(seed)
    images = []
    labels = []
    for digit, strokes in _DIGIT_STROKES.items():
        template = np.zeros((8, 8))
        for row, col in strokes:
            template[row, col] = 12.0
        for _ in range(samples_per_class):
            shift_r, shift_c = rng.integers(-1, 2, size=2)
            shifted = np.roll(np.roll(template, shift_r, axis=0), shift_c, axis=1)
            image = shifted * rng.uniform(0.7, 1.3) + rng.normal(scale=1.5, size=(8, 8))
            image = np.clip(image, 0.0, 16.0)
            images.append(image.ravel())
            labels.append(float(digit))
    order = rng.permutation(len(images))
    X = np.array(images)[order]
    y = np.array(labels)[order]
    names = [f"pixel_{i // 8}_{i % 8}" for i in range(64)]
    return MicroDataset(
        name="digits",
        X=X,
        y=y,
        feature_names=names,
        real_mask=np.ones(64, dtype=bool),
    )


def append_noise_columns(
    dataset: MicroDataset, noise_factor: int = 10, seed: int = 0
) -> MicroDataset:
    """Append ``noise_factor``x as many random columns as the dataset has real ones.

    Noise columns are drawn from uniform, Gaussian and Bernoulli distributions
    with randomly initialised parameters, matching the paper's micro-benchmark
    protocol ("the number of noise features we append is 10x more than the
    number of original features").
    """
    rng = np.random.default_rng(seed)
    n, d = dataset.X.shape
    n_noise = noise_factor * d
    blocks = []
    names = []
    for j in range(n_noise):
        kind = j % 3
        if kind == 0:
            column = rng.normal(loc=rng.normal(), scale=abs(rng.normal()) + 0.5, size=n)
        elif kind == 1:
            low = rng.normal()
            column = rng.uniform(low, low + abs(rng.normal()) + 1.0, size=n)
        else:
            column = (rng.random(n) < rng.uniform(0.1, 0.9)).astype(np.float64)
        blocks.append(column)
        names.append(f"noise_{j}")
    X = np.column_stack([dataset.X] + blocks)
    real_mask = np.concatenate([dataset.real_mask, np.zeros(n_noise, dtype=bool)])
    return MicroDataset(
        name=f"{dataset.name}+noise",
        X=X,
        y=dataset.y.copy(),
        feature_names=dataset.feature_names + names,
        real_mask=real_mask,
    )


def make_micro_benchmark(
    name: str, noise_factor: int = 10, seed: int = 0, **kwargs
) -> MicroDataset:
    """Load 'kraken' or 'digits' and append the noise columns in one step."""
    key = name.strip().lower()
    if key == "kraken":
        base = load_kraken(seed=seed, **kwargs)
    elif key == "digits":
        base = load_digits(seed=seed, **kwargs)
    else:
        raise ValueError(f"unknown micro benchmark {name!r}")
    return append_noise_columns(base, noise_factor=noise_factor, seed=seed + 1)
