"""Named dataset scenarios mirroring the paper's five real-world datasets.

Each scenario mimics the *shape* of the corresponding paper dataset: task type,
presence of a soft time key, and the rough number of joinable candidate tables
(scaled down where the original count — 350 tables for School (L) — would make
the offline benchmarks impractically slow; the scaling is recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.datasets.bundle import AugmentationDataset
from repro.datasets.synthetic import (
    RelationalDatasetBuilder,
    SignalTableSpec,
)

DATASET_NAMES = ("taxi", "pickup", "poverty", "school_s", "school_l")


def make_taxi(seed: int = 0, scale: float = 1.0) -> AugmentationDataset:
    """Taxi-style regression: daily collision/demand counts with weather-like soft joins.

    Mirrors the paper's Taxi dataset: a regression target, a day-granularity
    time key, ~29 candidate tables of which a couple (weather, events) carry
    signal at finer time granularity.
    """
    builder = RelationalDatasetBuilder(
        name="taxi",
        task="regression",
        n_rows=int(700 * scale),
        n_entities=150,
        n_base_features=4,
        with_time_key=True,
        n_days=140,
        noise_level=0.4,
        seed=seed,
    )
    builder.add_signal_table(
        SignalTableSpec("weather", n_signal_columns=3, n_extra_columns=4, key="time",
                        weight=1.2, fine_grained_time=True)
    )
    builder.add_signal_table(
        SignalTableSpec("events", n_signal_columns=2, n_extra_columns=3, key="time", weight=0.8)
    )
    builder.add_signal_table(
        SignalTableSpec("boroughs", n_signal_columns=2, n_extra_columns=3, key="entity", weight=0.7)
    )
    builder.add_noise_tables(26, prefix="taxi_noise", n_columns=6)
    return builder.build()


def make_pickup(seed: int = 1, scale: float = 1.0) -> AugmentationDataset:
    """Pickup-style regression: hourly airport pickups with a strong weather signal.

    Mirrors the paper's Pickup dataset (23 candidate tables, strong time-keyed
    co-predictors), where naive table-at-a-time joining loses the most accuracy.
    """
    builder = RelationalDatasetBuilder(
        name="pickup",
        task="regression",
        n_rows=int(600 * scale),
        n_entities=80,
        n_base_features=3,
        with_time_key=True,
        n_days=120,
        noise_level=0.3,
        base_signal_weight=0.5,
        seed=seed,
    )
    builder.add_signal_table(
        SignalTableSpec("flights", n_signal_columns=3, n_extra_columns=3, key="time", weight=1.5)
    )
    builder.add_signal_table(
        SignalTableSpec("weather_hourly", n_signal_columns=2, n_extra_columns=4, key="time",
                        weight=1.0, fine_grained_time=True)
    )
    builder.add_noise_tables(21, prefix="pickup_noise", n_columns=5)
    return builder.build()


def make_poverty(seed: int = 2, scale: float = 1.0) -> AugmentationDataset:
    """Poverty-style regression: county-level socio-economic indicators (hard keys only).

    Mirrors the paper's Poverty dataset (39 candidate tables keyed by
    geography, no time key).
    """
    builder = RelationalDatasetBuilder(
        name="poverty",
        task="regression",
        n_rows=int(800 * scale),
        n_entities=400,
        n_base_features=5,
        with_time_key=False,
        noise_level=0.35,
        seed=seed,
    )
    builder.add_signal_table(
        SignalTableSpec("unemployment", n_signal_columns=3, n_extra_columns=4, key="entity", weight=1.2)
    )
    builder.add_signal_table(
        SignalTableSpec("education", n_signal_columns=2, n_extra_columns=4, key="entity", weight=1.0)
    )
    builder.add_signal_table(
        SignalTableSpec("population", n_signal_columns=2, n_extra_columns=3, key="entity", weight=0.6)
    )
    builder.add_noise_tables(36, prefix="poverty_noise", n_columns=6)
    return builder.build()


def make_school(size: str = "S", seed: int = 3, scale: float = 1.0) -> AugmentationDataset:
    """School-style classification: per-school test performance with entity-keyed joins.

    ``size='S'`` mirrors School (S) with ~16 candidate tables; ``size='L'``
    mirrors School (L) with a much larger, noisier pool (60 tables here versus
    the paper's 350, scaled down for offline runtime).
    """
    size = size.upper()
    if size not in ("S", "L"):
        raise ValueError("size must be 'S' or 'L'")
    n_noise = 13 if size == "S" else 56
    builder = RelationalDatasetBuilder(
        name=f"school_{size.lower()}",
        task="classification",
        n_rows=int(700 * scale),
        n_entities=350,
        n_base_features=4,
        n_classes=2,
        with_time_key=False,
        noise_level=0.5,
        base_signal_weight=0.6,
        seed=seed + (10 if size == "L" else 0),
    )
    builder.add_signal_table(
        SignalTableSpec("district_funding", n_signal_columns=3, n_extra_columns=3, key="entity", weight=1.3)
    )
    builder.add_signal_table(
        SignalTableSpec("student_demographics", n_signal_columns=2, n_extra_columns=4, key="entity", weight=1.0)
    )
    if size == "L":
        builder.add_signal_table(
            SignalTableSpec("teacher_ratios", n_signal_columns=2, n_extra_columns=3, key="entity", weight=0.8)
        )
    builder.add_noise_tables(n_noise, prefix=f"school_{size.lower()}_noise", n_columns=6)
    return builder.build()


def load_dataset(name: str, seed: int | None = None, scale: float = 1.0) -> AugmentationDataset:
    """Load a named scenario: taxi, pickup, poverty, school_s or school_l."""
    key = name.strip().lower().replace(" ", "_").replace("(", "").replace(")", "")
    factories = {
        "taxi": lambda: make_taxi(seed=seed if seed is not None else 0, scale=scale),
        "pickup": lambda: make_pickup(seed=seed if seed is not None else 1, scale=scale),
        "poverty": lambda: make_poverty(seed=seed if seed is not None else 2, scale=scale),
        "school_s": lambda: make_school("S", seed=seed if seed is not None else 3, scale=scale),
        "school_l": lambda: make_school("L", seed=seed if seed is not None else 3, scale=scale),
    }
    factory = factories.get(key)
    if factory is None:
        raise ValueError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    return factory()
