"""Generic generator for relational augmentation datasets with planted signal.

The builder creates:

* a **base table** with an entity key, optionally a day-granularity timestamp
  (a soft key), a handful of base features, and a target column;
* **signal tables** keyed by the entity key or the timestamp, carrying the
  hidden columns that (together with the base features) generate the target,
  mixed with a few irrelevant columns;
* **noise tables** with matching keys but purely random contents.

The target is a noisy non-linear function of the base features and the hidden
signals, so augmentation genuinely improves a model and the generated
repository reproduces the structural challenge the paper describes: most
candidate tables and most columns are useless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.bundle import AugmentationDataset
from repro.discovery.candidates import JoinCandidate, KeyPair
from repro.discovery.repository import DataRepository
from repro.relational.column import Column
from repro.relational.schema import DATETIME, NUMERIC
from repro.relational.table import Table

DAY_SECONDS = 86_400.0
HOUR_SECONDS = 3_600.0


@dataclass
class SignalTableSpec:
    """Specification of one signal-bearing foreign table."""

    name: str
    n_signal_columns: int = 2
    n_extra_columns: int = 3
    key: str = "entity"  # "entity" or "time"
    weight: float = 1.0
    fine_grained_time: bool = False  # hour-level rows for a day-level base key


@dataclass
class NoiseTableSpec:
    """Specification of one pure-noise foreign table."""

    name: str
    n_columns: int = 5
    key: str = "entity"
    key_overlap: float = 0.9  # fraction of base keys present in the table


class RelationalDatasetBuilder:
    """Build an :class:`AugmentationDataset` with controlled signal placement."""

    def __init__(
        self,
        name: str,
        task: str = "regression",
        n_rows: int = 800,
        n_entities: int = 200,
        n_base_features: int = 4,
        n_classes: int = 2,
        with_time_key: bool = False,
        n_days: int = 120,
        noise_level: float = 0.3,
        base_signal_weight: float = 1.0,
        n_categorical_base: int = 1,
        seed: int | np.random.Generator = 0,
    ):
        self.name = name
        self.task = task
        self.n_rows = n_rows
        self.n_entities = n_entities
        self.n_base_features = n_base_features
        self.n_classes = n_classes
        self.with_time_key = with_time_key
        self.n_days = n_days
        self.noise_level = noise_level
        self.base_signal_weight = base_signal_weight
        self.n_categorical_base = n_categorical_base
        # an explicit Generator lets a caller thread one RNG stream through
        # several builders; an int seeds a private stream per build() call
        self.seed = seed
        self.signal_specs: list[SignalTableSpec] = []
        self.noise_specs: list[NoiseTableSpec] = []

    # -- specification -----------------------------------------------------------

    def add_signal_table(self, spec: SignalTableSpec) -> "RelationalDatasetBuilder":
        """Register a signal-bearing foreign table."""
        self.signal_specs.append(spec)
        return self

    def add_noise_table(self, spec: NoiseTableSpec) -> "RelationalDatasetBuilder":
        """Register a pure-noise foreign table."""
        self.noise_specs.append(spec)
        return self

    def add_noise_tables(self, count: int, prefix: str = "noise", **kwargs) -> "RelationalDatasetBuilder":
        """Register ``count`` noise tables with auto-generated names."""
        for i in range(count):
            params = dict(kwargs)
            params.setdefault("key", "entity" if i % 2 == 0 or not self.with_time_key else "time")
            self.noise_specs.append(NoiseTableSpec(name=f"{prefix}_{i:03d}", **params))
        return self

    # -- generation ----------------------------------------------------------------

    def build(self) -> AugmentationDataset:
        """Generate the base table, all foreign tables and the candidate list."""
        rng = (
            self.seed
            if isinstance(self.seed, np.random.Generator)
            else np.random.default_rng(self.seed)
        )
        entity_ids = rng.integers(0, self.n_entities, size=self.n_rows).astype(np.float64)
        day_index = rng.integers(0, self.n_days, size=self.n_rows)
        timestamps = day_index * DAY_SECONDS

        base_features = rng.normal(size=(self.n_rows, self.n_base_features))
        base_weights = rng.normal(scale=self.base_signal_weight, size=self.n_base_features)
        score = base_features @ base_weights

        # hidden per-entity and per-day signal values for each signal table
        repository = DataRepository()
        candidates: list[JoinCandidate] = []
        signal_names: list[str] = []
        for spec in self.signal_specs:
            table, contribution, candidate = self._build_signal_table(
                spec, rng, entity_ids, day_index
            )
            repository.add(table)
            candidates.append(candidate)
            signal_names.append(spec.name)
            score = score + contribution

        for spec in self.noise_specs:
            table, candidate = self._build_noise_table(spec, rng, entity_ids, day_index)
            repository.add(table)
            candidates.append(candidate)

        score = score + self.noise_level * rng.normal(size=self.n_rows)
        target = self._score_to_target(score, rng)

        columns = [Column.numeric("entity_id", entity_ids)]
        if self.with_time_key:
            columns.append(Column.datetime("timestamp", timestamps))
        for j in range(self.n_base_features):
            columns.append(Column.numeric(f"base_feat_{j}", base_features[:, j]))
        for j in range(self.n_categorical_base):
            categories = np.array(["north", "south", "east", "west"], dtype=object)
            columns.append(
                Column.categorical(
                    f"base_cat_{j}", categories[rng.integers(0, 4, size=self.n_rows)]
                )
            )
        columns.append(self._target_column(target))
        base_table = Table(columns, name=f"{self.name}_base")

        soft_keys = ["timestamp"] if self.with_time_key else []
        return AugmentationDataset(
            name=self.name,
            base_table=base_table,
            repository=repository,
            target="target",
            task=self.task,
            candidates=candidates,
            soft_key_columns=soft_keys,
            signal_tables=signal_names,
        )

    # -- helpers -------------------------------------------------------------------

    def _score_to_target(self, score: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.task == "regression":
            return score
        if self.n_classes == 2:
            return (score > np.median(score)).astype(np.float64)
        quantiles = np.quantile(score, np.linspace(0, 1, self.n_classes + 1)[1:-1])
        return np.searchsorted(quantiles, score).astype(np.float64)

    def _target_column(self, target: np.ndarray) -> Column:
        return Column.numeric("target", target)

    def _build_signal_table(
        self,
        spec: SignalTableSpec,
        rng: np.random.Generator,
        entity_ids: np.ndarray,
        day_index: np.ndarray,
    ) -> tuple[Table, np.ndarray, JoinCandidate]:
        """Create one signal table and return its contribution to the target."""
        if spec.key == "entity":
            domain = np.arange(self.n_entities, dtype=np.float64)
            key_name, base_key, soft = "entity_id", "entity_id", False
            lookup = entity_ids.astype(np.int64)
        else:
            domain = np.arange(self.n_days, dtype=np.float64) * DAY_SECONDS
            key_name, base_key, soft = "timestamp", "timestamp", True
            lookup = day_index

        signal_values = rng.normal(size=(len(domain), spec.n_signal_columns))
        weights = rng.normal(scale=spec.weight, size=spec.n_signal_columns)
        contribution = signal_values[lookup] @ weights

        columns: list[Column] = []
        if spec.key == "time" and spec.fine_grained_time:
            # hour-granularity rows whose per-day mean equals the planted signal
            hours = np.arange(len(domain) * 24, dtype=np.float64)
            key_values = (hours // 24) * DAY_SECONDS + (hours % 24) * HOUR_SECONDS
            expanded = np.repeat(signal_values, 24, axis=0)
            expanded = expanded + 0.2 * rng.normal(size=expanded.shape)
            expanded -= expanded.reshape(len(domain), 24, -1).mean(axis=1).repeat(24, axis=0) - np.repeat(
                signal_values, 24, axis=0
            )
            columns.append(Column.datetime(key_name, key_values))
            value_matrix = expanded
        else:
            if spec.key == "time":
                columns.append(Column.datetime(key_name, domain))
            else:
                columns.append(Column.numeric(key_name, domain))
            value_matrix = signal_values

        for j in range(spec.n_signal_columns):
            columns.append(Column.numeric(f"{spec.name}_sig_{j}", value_matrix[:, j]))
        for j in range(spec.n_extra_columns):
            columns.append(
                Column.numeric(
                    f"{spec.name}_extra_{j}", rng.normal(size=value_matrix.shape[0])
                )
            )
        table = Table(columns, name=spec.name)
        candidate = JoinCandidate(
            foreign_table=spec.name,
            keys=[KeyPair(base_key, key_name, soft=soft)],
            score=float(rng.uniform(0.4, 0.9)),
        )
        return table, contribution, candidate

    def _build_noise_table(
        self,
        spec: NoiseTableSpec,
        rng: np.random.Generator,
        entity_ids: np.ndarray,
        day_index: np.ndarray,
    ) -> tuple[Table, JoinCandidate]:
        """Create one pure-noise table keyed like a signal table."""
        if spec.key == "entity" or not self.with_time_key:
            domain = np.arange(self.n_entities, dtype=np.float64)
            key_name, base_key, soft = "entity_id", "entity_id", False
            key_ctype = NUMERIC
        else:
            domain = np.arange(self.n_days, dtype=np.float64) * DAY_SECONDS
            key_name, base_key, soft = "timestamp", "timestamp", True
            key_ctype = DATETIME
        keep = rng.random(len(domain)) < spec.key_overlap
        key_values = domain[keep]
        columns = [Column(key_name, key_values, key_ctype)]
        for j in range(spec.n_columns):
            if j % 4 == 3:
                categories = np.array(["a", "b", "c", "d", "e"], dtype=object)
                columns.append(
                    Column.categorical(
                        f"{spec.name}_cat_{j}",
                        categories[rng.integers(0, 5, size=len(key_values))],
                    )
                )
            else:
                columns.append(
                    Column.numeric(f"{spec.name}_col_{j}", rng.normal(size=len(key_values)))
                )
        table = Table(columns, name=spec.name)
        candidate = JoinCandidate(
            foreign_table=spec.name,
            keys=[KeyPair(base_key, key_name, soft=soft)],
            score=float(rng.uniform(0.05, 0.6)),
        )
        return table, candidate
