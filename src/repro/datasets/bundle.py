"""The bundle handed to ARDA: base table, repository, target, task and hints."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.discovery.candidates import JoinCandidate
from repro.discovery.repository import DataRepository
from repro.relational.table import Table


@dataclass
class AugmentationDataset:
    """Everything needed to run an augmentation experiment on one dataset.

    ``candidates`` may be pre-computed (the generators know the true join
    structure, mimicking a discovery system's output); if empty, ARDA runs its
    own :class:`~repro.discovery.discovery.JoinDiscovery` over the repository.
    ``signal_tables`` records which repository tables actually carry signal —
    ground truth used only by tests and the noise-filtering analysis, never by
    ARDA itself.
    """

    name: str
    base_table: Table
    repository: DataRepository
    target: str
    task: str
    candidates: list[JoinCandidate] = field(default_factory=list)
    soft_key_columns: list[str] = field(default_factory=list)
    signal_tables: list[str] = field(default_factory=list)

    @property
    def num_candidate_tables(self) -> int:
        """Number of repository tables available for augmentation."""
        return len(self.repository)

    def summary(self) -> dict:
        """Compact description used in reports."""
        return {
            "name": self.name,
            "task": self.task,
            "rows": self.base_table.num_rows,
            "base_columns": self.base_table.num_columns,
            "candidate_tables": self.num_candidate_tables,
            "signal_tables": len(self.signal_tables),
        }
