"""Deterministic materialisation of a :class:`ScenarioSpec` into tables.

Everything here is a pure function of the spec: per-table bodies descend
from the ``data_seed`` values the sampler baked in, so a spec document from
a repro file rebuilds the exact same bytes — same content fingerprints, same
discovery scores — in any process.

The base table covers each planted key domain completely (every domain
value appears at least once), and each planted foreign table carries exactly
the domain as its key set.  With identical distinct value sets the two
MinHash signatures are equal and discovery's containment estimate is exactly
1.0 — the anchor of the planted-vs-decoy ranking guarantee.  Planted signal
columns with ``fan_out > 1`` put duplicate rows under every key whose
per-key *mean* is the planted value, so the join's duplicate
pre-aggregation (``numeric_agg="mean"``) reconstructs the exact value the
target was computed from.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.datasets.bundle import AugmentationDataset
from repro.datasets.sqlgen.spec import ColumnSpec, ScenarioSpec, TableSpec
from repro.discovery.candidates import JoinCandidate, KeyPair
from repro.discovery.repository import DataRepository
from repro.relational.column import Column
from repro.relational.persist import table_fingerprint
from repro.relational.table import Table

__all__ = [
    "materialise_scenario",
    "write_scenario_repository",
    "repository_fingerprint",
    "planted_candidates",
    "iter_streaming_batches",
    "STREAM_TABLE",
]

STREAM_TABLE = "sensor_log"


def _noise_column(rng: np.random.Generator, spec: ColumnSpec, n_rows: int) -> Column:
    if spec.kind == "numeric":
        return Column.numeric(spec.name, rng.normal(size=n_rows))
    if spec.kind == "integer":
        values = rng.integers(0, max(2, spec.cardinality), size=n_rows)
        return Column.numeric(spec.name, values.astype(np.float64))
    labels = np.array([f"cat{v}" for v in range(max(2, spec.cardinality))], dtype=object)
    return Column.categorical(spec.name, labels[rng.integers(0, len(labels), size=n_rows)])


def _domain(low: int, size: int) -> np.ndarray:
    return np.arange(low, low + size, dtype=np.float64)


def _base_key_column(rng: np.random.Generator, low: int, size: int, n_rows: int) -> np.ndarray:
    """Base FK values: the whole domain tiled to ``n_rows`` then shuffled, so
    every domain value appears at least once (exact containment both ways)."""
    reps = -(-n_rows // size)
    values = np.tile(_domain(low, size), reps)[:n_rows]
    rng.shuffle(values)
    return values


def _planted_table(
    spec: TableSpec, low: int, size: int
) -> tuple[Table, dict[str, np.ndarray]]:
    """Build one planted table; returns it plus per-key signal values in
    domain order (what a mean-aggregated join reproduces per base row)."""
    rng = np.random.default_rng(spec.data_seed)
    keys = np.repeat(_domain(low, size), spec.fan_out)
    columns = [Column.numeric(spec.key_column, keys)]
    signal: dict[str, np.ndarray] = {}
    for column in spec.columns:
        if column.role == "feature":
            per_key = rng.normal(size=size)
            if spec.fan_out == 1:
                rows = per_key
            else:
                deltas = rng.normal(size=(size, spec.fan_out))
                deltas -= deltas.mean(axis=1, keepdims=True)
                rows = (per_key[:, None] + deltas).ravel()
            signal[column.name] = per_key
            columns.append(Column.numeric(column.name, rows))
        else:
            columns.append(_noise_column(rng, column, spec.n_rows))
    return Table(columns, name=spec.name), signal


def _decoy_table(spec: TableSpec, low: int, size: int) -> Table:
    rng = np.random.default_rng(spec.data_seed)
    n_in = max(1, int(round(spec.key_overlap * size)))
    n_in = min(n_in, spec.n_keys, size)
    in_values = rng.choice(_domain(low, size), size=n_in, replace=False)
    out_values = _domain(spec.key_offset, spec.n_keys - n_in)
    keys = np.concatenate([in_values, out_values])
    rng.shuffle(keys)
    columns = [Column.numeric(spec.key_column, keys)]
    for column in spec.columns:
        columns.append(_noise_column(rng, column, spec.n_rows))
    return Table(columns, name=spec.name)


def _noise_table(spec: TableSpec) -> Table:
    rng = np.random.default_rng(spec.data_seed)
    keys = _domain(spec.key_offset, spec.n_keys)
    columns = [Column.numeric(spec.key_column, keys)]
    for column in spec.columns:
        columns.append(_noise_column(rng, column, spec.n_rows))
    return Table(columns, name=spec.name)


def materialise_tables(
    spec: ScenarioSpec,
) -> tuple[Table, list[Table]]:
    """Materialise the base table (target included) and every foreign table."""
    domains = {key: (low, size) for key, low, size in spec.key_domains}
    tables: list[Table] = []
    signal_values: dict[tuple[str, str], np.ndarray] = {}
    for table_spec in spec.tables:
        if table_spec.role == "planted":
            low, size = domains[table_spec.key_column]
            table, signal = _planted_table(table_spec, low, size)
            for column_name, per_key in signal.items():
                signal_values[(table_spec.name, column_name)] = per_key
        elif table_spec.role == "decoy":
            low, size = domains[table_spec.key_column]
            table = _decoy_table(table_spec, low, size)
        else:
            table = _noise_table(table_spec)
        tables.append(table)

    base_rng = np.random.default_rng(spec.base_seed)
    n = spec.n_base_rows
    base_keys: dict[str, np.ndarray] = {}
    columns: list[Column] = []
    for key, low, size in spec.key_domains:
        values = _base_key_column(base_rng, low, size, n)
        base_keys[key] = values
        columns.append(Column.numeric(key, values))
    base_data: dict[str, np.ndarray] = {}
    for column_spec in spec.base_columns:
        column = _noise_column(base_rng, column_spec, n)
        if column_spec.kind != "categorical":
            base_data[column_spec.name] = np.asarray(column.values, dtype=np.float64)
        columns.append(column)

    key_to_spec = {t.name: t for t in spec.tables}
    score = np.zeros(n)
    for name, weight in spec.target.base_weights:
        score += weight * base_data[name]
    for table_name, column_name, weight in spec.target.signal_weights:
        key = key_to_spec[table_name].key_column
        low, _ = domains[key]
        indices = (base_keys[key] - low).astype(np.int64)
        score += weight * signal_values[(table_name, column_name)][indices]

    target_rng = np.random.default_rng(spec.target_seed)
    scale = float(np.std(score)) or 1.0
    score = score + spec.target.noise_level * scale * target_rng.normal(size=n)
    if spec.target.task == "classification":
        k = spec.target.n_classes
        if k == 2:
            target = (score > np.median(score)).astype(np.float64)
        else:
            quantiles = np.quantile(score, np.linspace(0, 1, k + 1)[1:-1])
            target = np.searchsorted(quantiles, score).astype(np.float64)
    else:
        target = score
    columns.append(Column.numeric("target", target))

    return Table(columns, name="base"), tables


def planted_candidates(spec: ScenarioSpec) -> list[JoinCandidate]:
    """The ground-truth join plan as discovery-shaped candidates."""
    return [
        JoinCandidate(
            foreign_table=edge.foreign_table,
            keys=[KeyPair(edge.base_column, edge.foreign_column)],
            score=1.0,
        )
        for edge in spec.joins
    ]


def materialise_scenario(spec: ScenarioSpec) -> AugmentationDataset:
    """Materialise into an in-memory repository (no disk involved)."""
    base, tables = materialise_tables(spec)
    repository = DataRepository()
    for table in tables:
        repository.add(table)
    return AugmentationDataset(
        name=spec.scenario_id,
        base_table=base,
        repository=repository,
        target="target",
        task=spec.target.task,
        signal_tables=[t.name for t in spec.planted_tables()],
    )


def write_scenario_repository(
    spec: ScenarioSpec,
    directory: str | Path,
    chunk_rows: int | None = None,
) -> tuple[Table, DataRepository]:
    """Materialise into a disk-backed repository under ``directory``.

    ``chunk_rows`` picks the persisted layout: ``0`` writes monolithic
    version-1 files, a positive value writes row-group chunked files.
    Content fingerprints are layout-invariant, so the two layouts carry
    byte-identical logical content.
    """
    base, tables = materialise_tables(spec)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    repository = DataRepository.open(directory, chunk_rows=chunk_rows, load_profiles=False)
    for table in tables:
        repository.add(table)
    return base, repository


def repository_fingerprint(repository: DataRepository) -> str:
    """One stable hash over every table's content fingerprint (name-sorted).

    Layout-invariant (content fingerprints ignore chunking), so monolithic
    and chunked materialisations of the same spec hash identically.
    """
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(repository.table_names):
        try:
            fingerprint = repository.header(name).fingerprint
        except KeyError:  # in-memory table: fingerprint the decoded content
            fingerprint = table_fingerprint(repository.get(name))
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(fingerprint.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def iter_streaming_batches(
    spec: ScenarioSpec,
    n_batches: int,
    batch_rows: int,
) -> Iterator[Table]:
    """Yield growing prefixes of an append-only sensor table.

    Batch ``k`` is the table after ``k + 1`` micro-batch ingests (rows
    ``0 .. (k + 1) * batch_rows``); rows never change once appended, only
    accumulate, mimicking a sensor feed.  Keyed by the scenario's first
    planted key so the table is a plausible (but unplanted) join target.
    Deterministic from the spec alone.
    """
    if n_batches < 1 or batch_rows < 1:
        raise ValueError("need at least one batch of at least one row")
    key, low, size = spec.key_domains[0]
    total = n_batches * batch_rows
    rng = np.random.default_rng(
        np.random.SeedSequence(spec.target_seed, spawn_key=(len(spec.tables),))
    )
    keys = rng.choice(_domain(low, size), size=total, replace=True)
    reading = rng.normal(size=total)
    counter = np.arange(total, dtype=np.float64)
    for k in range(n_batches):
        end = (k + 1) * batch_rows
        yield Table(
            [
                Column.numeric(key, keys[:end]),
                Column.numeric("reading", reading[:end]),
                Column.numeric("ingest_seq", counter[:end]),
            ],
            name=STREAM_TABLE,
        )
