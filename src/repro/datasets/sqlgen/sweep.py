"""The scenario sweep driver: materialise, run ARDA, score against the plant.

:class:`ScenarioSweep` is the fuzzing harness the ``repro sweep`` CLI and CI
run: it samples ``n_scenarios`` specs from ``(seed, profile)``, materialises
each into a repository (monolithic, chunked, or in-memory layout), runs join
discovery plus the full ``ARDA`` pipeline end to end, and scores the run
against the planted ground truth:

* **discovery recall** — fraction of planted FK edges discovery emitted
  (exact key pair, hard join);
* **discovery precision** — planted tables among the top ``n_planted``
  ranked tables;
* **ranking** — every planted table strictly outranks every decoy table;
* **selection recall** — fraction of planted foreign feature columns the
  selector kept (reported, never failed on: selection is statistical);
* **uplift** — holdout score of the augmented model minus the
  no-augmentation baseline ARDA itself measures.

Scores are deterministic: the byte content of
:meth:`SweepResult.deterministic_doc` (wall-times excluded) is a pure
function of ``(seed, config)``, compared across fresh processes by the
repeatability tests.  A failing scenario serializes to a JSON repro file —
the spec document embedded, à la the snapshot-isolation checker's failing
histories — that :func:`replay_repro` re-runs standalone.

:func:`run_streaming_scenario` closes the serving loop: an append-only
sensor table ingested in micro-batches through the snapshot-isolated
repository while a live :class:`~repro.serving.server.PredictionServer`
scores between ingests; served predictions must stay byte-identical to
offline ``FittedPipeline.predict`` across every ingest generation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import ARDAConfig, ServingConfig, SweepConfig
from repro.datasets.sqlgen.materialise import (
    STREAM_TABLE,
    iter_streaming_batches,
    materialise_scenario,
    planted_candidates,
    repository_fingerprint,
    write_scenario_repository,
)
from repro.datasets.sqlgen.samplers import generate_scenario, resolve_profile
from repro.datasets.sqlgen.spec import ScenarioSpec
from repro.discovery.discovery import JoinDiscovery
from repro.observability import DEFAULT_RATIO_BUCKETS, get_registry

__all__ = [
    "REPRO_FORMAT",
    "ScenarioScore",
    "SweepResult",
    "ScenarioSweep",
    "replay_repro",
    "StreamingScore",
    "run_streaming_scenario",
]

REPRO_FORMAT = "arda-sweep-repro-v1"


@dataclass
class ScenarioScore:
    """How one scenario's pipeline run measured up against its plant."""

    scenario_id: str
    index: int
    spec_fingerprint: str
    repository_fingerprint: str
    n_tables: int
    n_planted: int
    n_decoys: int
    task: str
    discovery_recall: float
    discovery_precision: float
    ranking_ok: bool
    selection_recall: float
    base_score: float
    augmented_score: float
    uplift: float
    failures: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_doc(self) -> dict:
        """Deterministic document: everything except wall-clock time."""
        return {
            "scenario_id": self.scenario_id,
            "index": self.index,
            "spec_fingerprint": self.spec_fingerprint,
            "repository_fingerprint": self.repository_fingerprint,
            "n_tables": self.n_tables,
            "n_planted": self.n_planted,
            "n_decoys": self.n_decoys,
            "task": self.task,
            "discovery_recall": round(self.discovery_recall, 12),
            "discovery_precision": round(self.discovery_precision, 12),
            "ranking_ok": self.ranking_ok,
            "selection_recall": round(self.selection_recall, 12),
            "base_score": round(self.base_score, 12),
            "augmented_score": round(self.augmented_score, 12),
            "uplift": round(self.uplift, 12),
            "failures": list(self.failures),
        }


@dataclass
class SweepResult:
    """Everything one sweep produced, plus the deterministic comparison doc."""

    seed: int
    profile: str
    layout: str
    scores: list[ScenarioScore]
    repro_files: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def n_failed(self) -> int:
        return sum(1 for s in self.scores if not s.passed)

    @property
    def passed(self) -> bool:
        return self.n_failed == 0

    @property
    def mean_discovery_recall(self) -> float:
        if not self.scores:
            return 0.0
        return float(np.mean([s.discovery_recall for s in self.scores]))

    @property
    def mean_selection_recall(self) -> float:
        if not self.scores:
            return 0.0
        return float(np.mean([s.selection_recall for s in self.scores]))

    @property
    def mean_uplift(self) -> float:
        if not self.scores:
            return 0.0
        return float(np.mean([s.uplift for s in self.scores]))

    def deterministic_doc(self) -> dict:
        """The byte-comparable view: pure function of ``(seed, config)``."""
        return {
            "seed": self.seed,
            "profile": self.profile,
            "layout": self.layout,
            "scores": [s.to_doc() for s in self.scores],
        }

    def deterministic_json(self) -> str:
        return json.dumps(self.deterministic_doc(), sort_keys=True, separators=(",", ":"))

    def summary(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "layout": self.layout,
            "scenarios": len(self.scores),
            "failed": self.n_failed,
            "mean_discovery_recall": round(self.mean_discovery_recall, 4),
            "mean_selection_recall": round(self.mean_selection_recall, 4),
            "mean_uplift": round(self.mean_uplift, 4),
            "elapsed_s": round(self.elapsed_s, 2),
            "repro_files": list(self.repro_files),
        }


class ScenarioSweep:
    """Run and score sampled scenarios against their planted ground truth."""

    def __init__(self, config: SweepConfig | None = None, registry=None):
        self.config = config or SweepConfig()
        self.registry = registry if registry is not None else get_registry()

    # -- scoring -------------------------------------------------------------

    def _arda_config(self) -> ARDAConfig:
        return ARDAConfig(
            executor=self.config.executor,
            n_jobs=self.config.n_jobs,
            tree_method=self.config.tree_method,
            capture_pipeline=False,
            persist_profiles=False,
        )

    def run_scenario(self, spec: ScenarioSpec, work_dir: str | Path | None = None) -> ScenarioScore:
        """Materialise one spec, run discovery + ARDA, score against the plant."""
        # imported here, not at module top: core.arda itself imports
        # repro.datasets (the bundle), so a top-level import would be circular
        from repro.core.arda import ARDA

        config = self.config
        started = time.perf_counter()
        if config.layout == "memory":
            dataset = materialise_scenario(spec)
            base, repository = dataset.base_table, dataset.repository
        else:
            if work_dir is None:
                raise ValueError(f"layout {config.layout!r} needs a work_dir")
            chunk_rows = 0 if config.layout == "monolithic" else config.chunk_rows
            scenario_dir = Path(work_dir) / spec.scenario_id
            base, repository = write_scenario_repository(
                spec, scenario_dir, chunk_rows=chunk_rows
            )

        candidates = JoinDiscovery().discover(base, repository, target="target")

        planted_edges = {
            (e.foreign_table, e.base_column, e.foreign_column) for e in spec.joins
        }
        found_edges = {
            (c.foreign_table, key.base_column, key.foreign_column)
            for c in candidates
            for key in c.keys
            if not key.soft
        }
        recall = len(planted_edges & found_edges) / len(planted_edges)

        planted_names = {t.name for t in spec.planted_tables()}
        decoy_names = {t.name for t in spec.decoy_tables()}
        ranked_tables: list[str] = []
        best: dict[str, float] = {}
        for candidate in candidates:  # already sorted by descending score
            if candidate.foreign_table not in best:
                best[candidate.foreign_table] = candidate.score
                ranked_tables.append(candidate.foreign_table)
        top = ranked_tables[: len(planted_names)]
        precision = (
            sum(1 for name in top if name in planted_names) / len(planted_names)
            if planted_names
            else 1.0
        )
        worst_planted = min((best.get(n, 0.0) for n in planted_names), default=0.0)
        best_decoy = max((best.get(n, 0.0) for n in decoy_names), default=0.0)
        ranking_ok = worst_planted > best_decoy

        report = ARDA(self._arda_config()).augment_tables(
            base_table=base,
            repository=repository,
            target="target",
            candidates=candidates,
            task=spec.target.task,
            dataset_name=spec.scenario_id,
        )

        planted_features = set(spec.target.planted_feature_names())
        kept = set(report.kept_columns)
        selection_recall = (
            len(planted_features & kept) / len(planted_features)
            if planted_features
            else 1.0
        )

        failures: list[str] = []
        if recall < config.min_discovery_recall:
            missing = sorted(planted_edges - found_edges)
            failures.append(
                f"discovery recall {recall:.3f} below floor "
                f"{config.min_discovery_recall:.3f}; missing edges: {missing}"
            )
        if config.require_ranking and not ranking_ok:
            failures.append(
                f"planted tables do not outrank decoys: worst planted score "
                f"{worst_planted:.4f} <= best decoy score {best_decoy:.4f}"
            )

        return ScenarioScore(
            scenario_id=spec.scenario_id,
            index=spec.index,
            spec_fingerprint=spec.fingerprint(),
            repository_fingerprint=repository_fingerprint(repository),
            n_tables=len(spec.tables),
            n_planted=len(planted_names),
            n_decoys=len(decoy_names),
            task=spec.target.task,
            discovery_recall=recall,
            discovery_precision=precision,
            ranking_ok=ranking_ok,
            selection_recall=selection_recall,
            base_score=report.base_score,
            augmented_score=report.augmented_score,
            uplift=report.improvement,
            failures=failures,
            elapsed_s=time.perf_counter() - started,
        )

    # -- the sweep -----------------------------------------------------------

    def run(self, work_dir: str | Path | None = None) -> SweepResult:
        """Sample and score ``config.n_scenarios`` scenarios.

        ``work_dir`` receives one repository directory per scenario for the
        disk layouts (required unless ``layout="memory"``); failing scenarios
        additionally serialize JSON repro files into ``config.repro_dir``.
        """
        config = self.config
        profile = resolve_profile(config.profile)
        scenarios = self.registry.counter("sweep.scenarios")
        failures_counter = self.registry.counter("sweep.failures")
        scenario_timer = self.registry.histogram("sweep.scenario_s")
        recall_histogram = self.registry.histogram(
            "sweep.discovery_recall", buckets=DEFAULT_RATIO_BUCKETS
        )
        started = time.perf_counter()
        scores: list[ScenarioScore] = []
        repro_files: list[str] = []
        for index in range(config.n_scenarios):
            spec = generate_scenario(config.seed, index, profile)
            score = self.run_scenario(spec, work_dir=work_dir)
            scores.append(score)
            scenarios.inc()
            scenario_timer.observe(score.elapsed_s)
            recall_histogram.observe(score.discovery_recall)
            if not score.passed:
                failures_counter.inc()
                if config.repro_dir is not None:
                    repro_files.append(str(self._write_repro(spec, score)))
        return SweepResult(
            seed=config.seed,
            profile=profile.name,
            layout=config.layout,
            scores=scores,
            repro_files=repro_files,
            elapsed_s=time.perf_counter() - started,
        )

    # -- repro files ---------------------------------------------------------

    def repro_doc(self, spec: ScenarioSpec, score: ScenarioScore) -> dict:
        """Self-contained failure record: config + spec + observed score."""
        config = self.config
        return {
            "format": REPRO_FORMAT,
            "seed": config.seed,
            "index": spec.index,
            "profile": resolve_profile(config.profile).name,
            "layout": config.layout,
            "chunk_rows": config.chunk_rows,
            "min_discovery_recall": config.min_discovery_recall,
            "require_ranking": config.require_ranking,
            "spec": spec.to_doc(),
            "score": score.to_doc(),
            "failures": list(score.failures),
        }

    def _write_repro(self, spec: ScenarioSpec, score: ScenarioScore) -> Path:
        directory = Path(self.config.repro_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{spec.scenario_id}.json"
        path.write_text(json.dumps(self.repro_doc(spec, score), indent=2, sort_keys=True))
        return path


def replay_repro(path: str | Path, work_dir: str | Path | None = None) -> ScenarioScore:
    """Re-run one failing scenario from its JSON repro file, standalone.

    The embedded spec document — not the sampler — drives materialisation,
    so the replay reproduces the exact repository bytes and scores of the
    original run even if sampler defaults have since changed.  Uses an
    in-memory repository when ``work_dir`` is omitted (layout never affects
    scores; fingerprints are layout-invariant).
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != REPRO_FORMAT:
        raise ValueError(f"{path}: not an {REPRO_FORMAT} repro file")
    spec = ScenarioSpec.from_doc(doc["spec"])
    config = SweepConfig(
        seed=doc["seed"],
        profile=doc["profile"],
        layout=doc["layout"] if work_dir is not None else "memory",
        chunk_rows=doc["chunk_rows"],
        min_discovery_recall=doc["min_discovery_recall"],
        require_ranking=doc["require_ranking"],
    )
    return ScenarioSweep(config).run_scenario(spec, work_dir=work_dir)


# -- the streaming scenario ---------------------------------------------------


@dataclass
class StreamingScore:
    """Result of the append-only micro-batch ingest scenario."""

    n_batches: int
    generations: list[int]
    reloads: int
    n_requests: int
    n_failed_requests: int
    predictions_pinned: bool
    stream_rows: int
    predictions: list[float]

    @property
    def passed(self) -> bool:
        return self.predictions_pinned and self.n_failed_requests == 0

    def to_doc(self) -> dict:
        return {
            "n_batches": self.n_batches,
            "generations": list(self.generations),
            "reloads": self.reloads,
            "n_requests": self.n_requests,
            "n_failed_requests": self.n_failed_requests,
            "predictions_pinned": self.predictions_pinned,
            "stream_rows": self.stream_rows,
        }


def run_streaming_scenario(
    work_dir: str | Path,
    seed: int = 0,
    n_batches: int = 3,
    batch_rows: int = 32,
    probe_rows: int = 8,
    registry=None,
) -> StreamingScore:
    """Ingest an append-only sensor table under a live prediction server.

    Flow: scenario ``(seed, 0, quick)`` is materialised to disk and a
    pipeline trained on its *planted* joins is saved as an artifact; a
    :class:`~repro.serving.server.PredictionServer` binds to the repository
    directory; then each micro-batch publishes a grown ``sensor_log`` as a
    new snapshot-isolated manifest generation, the server hot-reloads it,
    and a probe batch is scored over HTTP after every ingest.  The sensor
    table is never part of the join plan, so every serving generation must
    produce byte-identical predictions — ingest may only ever change *what
    is stored*, not *what is served*.
    """
    import urllib.request

    from repro.core.arda import ARDA
    from repro.observability import MetricsRegistry
    from repro.serving.pipeline import FittedPipeline
    from repro.serving.server import PredictionServer

    work_dir = Path(work_dir)
    spec = generate_scenario(seed, 0, "quick")
    lake = work_dir / "lake"
    base, repository = write_scenario_repository(spec, lake, chunk_rows=0)

    report = ARDA(ARDAConfig(capture_pipeline=True, persist_profiles=False)).augment_tables(
        base_table=base,
        repository=repository,
        target="target",
        candidates=planted_candidates(spec),
        task=spec.target.task,
        dataset_name=spec.scenario_id,
    )
    if report.pipeline is None:
        raise RuntimeError("streaming scenario needs a captured pipeline")
    artifact = work_dir / "stream.pipeline"
    report.pipeline.save(artifact)

    probe = base.head(probe_rows)
    offline = FittedPipeline.load(artifact, repository=repository)
    expected = np.asarray(offline.predict(probe), dtype=np.float64)
    offline.release()

    payload = json.dumps([base.row(i) for i in range(probe_rows)]).encode()
    server_registry = registry if registry is not None else MetricsRegistry()
    config = ServingConfig(port=0, workers=2, reload_interval_s=0.0)
    server = PredictionServer(
        artifact, repository=str(lake), config=config, registry=server_registry
    ).start()
    generations: list[int] = []
    predictions: list[float] = []
    n_requests = n_failed = reloads = 0
    pinned = True
    stream_rows = 0
    try:
        host, port = server.address

        def probe_once() -> None:
            nonlocal n_requests, n_failed, pinned
            request = urllib.request.Request(
                f"http://{host}:{port}/predict",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            n_requests += 1
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    served = np.asarray(
                        json.loads(response.read())["predictions"], dtype=np.float64
                    )
            except Exception:
                n_failed += 1
                return
            if not np.array_equal(served, expected):
                pinned = False

        probe_once()
        generations.append(server.generation)
        for batch in iter_streaming_batches(spec, n_batches, batch_rows):
            stream_rows = batch.num_rows
            if STREAM_TABLE in repository.table_names:
                repository.replace(batch)
            else:
                repository.add(batch)
            if server.check_reload():
                reloads += 1
            generations.append(server.generation)
            probe_once()
        predictions = [float(v) for v in expected]
    finally:
        server.close()

    return StreamingScore(
        n_batches=n_batches,
        generations=generations,
        reloads=reloads,
        n_requests=n_requests,
        n_failed_requests=n_failed,
        predictions_pinned=pinned,
        stream_rows=stream_rows,
        predictions=predictions,
    )
