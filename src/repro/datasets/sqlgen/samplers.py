"""Seeded samplers that compose random relational scenarios.

Three samplers, in the defio ``JoinSampler``/``AggregateSampler`` style,
each consuming a dedicated ``numpy.random.Generator`` so that every choice
descends from one :class:`numpy.random.SeedSequence`:

* :class:`SchemaSampler` — shapes: base row count, per-table column counts,
  dtypes and cardinalities;
* :class:`JoinGraphSampler` — the FK graph: planted edges with disjoint
  integer key domains, tunable fan-out, plus decoy tables (same key name,
  near-miss value overlap) and noise tables (disjoint keys, foreign names);
* :class:`TargetSampler` — the target as a known weighted function of the
  planted foreign features and selected base columns, plus gaussian noise.

:func:`generate_scenario` wires them together:
``SeedSequence(seed, spawn_key=(index,))`` spawns one independent stream
per sampler and per table body, so scenario ``(seed, index)`` is a pure
function — byte-identical specs across processes — and different seeds
diverge immediately.

The key geometry guarantees the discovery ranking the sweep asserts:

* planted tables carry *exactly* the base key's distinct value set, so the
  MinHash containment estimate is exactly 1.0 (identical signatures) and
  the candidate scores ``0.6 + 0.2 (same name) + 0.2 / fan_out >= 0.87``;
* decoys overlap at most ``0.35`` of the base domain, capping their score
  near ``0.6 * overlap + 0.4 <= 0.7`` even under estimator noise;
* key values stay below ``10**6`` so the profiler's ``%.6g`` value
  formatting round-trips every integer exactly, and every domain is sized
  under the profiler's MinHash value cap so signatures see the full set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.sqlgen.spec import (
    ColumnSpec,
    JoinEdge,
    ScenarioSpec,
    TableSpec,
    TargetSpec,
)

__all__ = [
    "SamplerProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "resolve_profile",
    "SchemaSampler",
    "JoinGraphSampler",
    "TargetSampler",
    "generate_scenario",
]

# realistic FK column names; tokens are unique across entries so two
# different keys never look name-similar to discovery
_KEY_NAMES = (
    "user_id",
    "item_id",
    "store_id",
    "device_id",
    "zone_id",
    "account_id",
    "vendor_id",
    "region_id",
)

# each planted edge j owns the half-open integer domain
# [_DOMAIN_STRIDE * (j + 1), ...); decoy out-of-domain values live at
# +_DECOY_OFFSET and noise-table keys at +_NOISE_OFFSET inside the same
# stride, so no two value pools ever collide and every value stays < 10**6
# (exact under the profiler's %.6g formatting)
_DOMAIN_STRIDE = 100_000
_DECOY_OFFSET = 40_000
_NOISE_OFFSET = 70_000


@dataclass(frozen=True)
class SamplerProfile:
    """Size envelope for sampled scenarios (``quick`` for CI, ``full`` bigger)."""

    name: str
    n_base_rows: tuple[int, int] = (120, 260)
    n_planted: tuple[int, int] = (1, 3)
    n_decoys: tuple[int, int] = (1, 3)
    n_noise_tables: tuple[int, int] = (0, 2)
    n_keys: tuple[int, int] = (40, 110)
    fan_out_choices: tuple[int, ...] = (1, 1, 2, 3)
    n_signal_columns: tuple[int, int] = (1, 2)
    n_noise_columns: tuple[int, int] = (0, 2)
    n_base_columns: tuple[int, int] = (2, 4)
    decoy_overlap: tuple[float, float] = (0.05, 0.35)
    noise_level: tuple[float, float] = (0.02, 0.15)
    classification_fraction: float = 0.4
    n_classes_choices: tuple[int, ...] = (2, 3)
    categorical_cardinality: tuple[int, int] = (3, 12)

    def __post_init__(self) -> None:
        if self.n_planted[0] < 1:
            raise ValueError("every scenario needs at least one planted table")
        if self.n_keys[1] > self.n_base_rows[0]:
            raise ValueError(
                "key domains must fit inside the smallest base table so the "
                "base column can cover the whole domain (exact containment)"
            )
        if self.n_planted[1] > len(_KEY_NAMES):
            raise ValueError(f"at most {len(_KEY_NAMES)} planted edges supported")


QUICK_PROFILE = SamplerProfile(name="quick")

FULL_PROFILE = SamplerProfile(
    name="full",
    n_base_rows=(800, 1600),
    n_planted=(2, 4),
    n_decoys=(2, 5),
    n_noise_tables=(1, 3),
    n_keys=(150, 600),
    fan_out_choices=(1, 1, 2, 3, 4),
    n_signal_columns=(1, 3),
    n_noise_columns=(0, 4),
    n_base_columns=(3, 6),
)

_PROFILES = {"quick": QUICK_PROFILE, "full": FULL_PROFILE}


def resolve_profile(profile: str | SamplerProfile) -> SamplerProfile:
    """Look up a named profile, or pass a :class:`SamplerProfile` through."""
    if isinstance(profile, SamplerProfile):
        return profile
    try:
        return _PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown sampler profile {profile!r}; choose from {sorted(_PROFILES)}"
        ) from None


def _randint(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    return int(rng.integers(bounds[0], bounds[1] + 1))


def _uniform(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    return float(rng.uniform(bounds[0], bounds[1]))


class SchemaSampler:
    """Sample table shapes: row counts, column dtypes and cardinalities."""

    def __init__(self, profile: str | SamplerProfile = QUICK_PROFILE):
        self.profile = resolve_profile(profile)

    def sample_base(self, rng: np.random.Generator) -> tuple[int, tuple[ColumnSpec, ...]]:
        """Base row count plus the base table's own (non-key) columns.

        At least one numeric base column is always present so the target can
        lean on a base feature; the rest mix numeric/integer/categorical.
        """
        n_rows = _randint(rng, self.profile.n_base_rows)
        n_columns = _randint(rng, self.profile.n_base_columns)
        columns = [ColumnSpec(name="base_attr0", kind="numeric", role="feature")]
        for i in range(1, n_columns):
            columns.append(self._sample_column(rng, f"base_attr{i}"))
        return n_rows, tuple(columns)

    def sample_foreign_columns(
        self,
        rng: np.random.Generator,
        table_index: int,
        n_signal: int,
    ) -> tuple[ColumnSpec, ...]:
        """Columns for one foreign table: ``n_signal`` numeric feature columns
        (named uniquely across the scenario so planted-feature recall can match
        kept columns by name) plus a sampled number of noise columns."""
        columns = [
            ColumnSpec(name=f"val_{table_index}_{i}", kind="numeric", role="feature")
            for i in range(n_signal)
        ]
        for i in range(_randint(rng, self.profile.n_noise_columns)):
            columns.append(self._sample_column(rng, f"attr_{table_index}_{i}"))
        return tuple(columns)

    def _sample_column(self, rng: np.random.Generator, name: str) -> ColumnSpec:
        kind = ("numeric", "integer", "categorical")[int(rng.integers(0, 3))]
        cardinality = 0
        if kind in ("integer", "categorical"):
            cardinality = _randint(rng, self.profile.categorical_cardinality)
        return ColumnSpec(name=name, kind=kind, cardinality=cardinality)


class JoinGraphSampler:
    """Sample the FK graph: planted edges, decoys, and noise tables."""

    def __init__(self, profile: str | SamplerProfile = QUICK_PROFILE):
        self.profile = resolve_profile(profile)
        self.schema = SchemaSampler(self.profile)

    def sample(
        self,
        rng: np.random.Generator,
        n_base_rows: int,
        data_seeds: "np.ndarray",
    ) -> tuple[
        tuple[tuple[str, int, int], ...],
        tuple[TableSpec, ...],
        tuple[JoinEdge, ...],
    ]:
        """Return ``(key_domains, tables, joins)`` for one scenario.

        ``data_seeds`` supplies one independent body seed per table, drawn
        from the scenario's SeedSequence by the caller.
        """
        profile = self.profile
        n_planted = _randint(rng, profile.n_planted)
        n_decoys = _randint(rng, profile.n_decoys)
        n_noise = _randint(rng, profile.n_noise_tables)

        key_names = list(rng.choice(len(_KEY_NAMES), size=n_planted, replace=False))
        domains: list[tuple[str, int, int]] = []
        tables: list[TableSpec] = []
        joins: list[JoinEdge] = []
        seed_cursor = 0

        for j in range(n_planted):
            key = _KEY_NAMES[int(key_names[j])]
            size = min(_randint(rng, profile.n_keys), n_base_rows)
            low = _DOMAIN_STRIDE * (j + 1)
            domains.append((key, low, size))
            fan_out = int(
                profile.fan_out_choices[int(rng.integers(0, len(profile.fan_out_choices)))]
            )
            n_signal = _randint(rng, profile.n_signal_columns)
            table_index = len(tables)
            table = TableSpec(
                name=f"planted_{j}_{key}",
                role="planted",
                key_column=key,
                n_keys=size,
                fan_out=fan_out,
                key_overlap=1.0,
                key_offset=low,
                columns=self.schema.sample_foreign_columns(rng, table_index, n_signal),
                data_seed=int(data_seeds[seed_cursor]),
            )
            seed_cursor += 1
            tables.append(table)
            joins.append(
                JoinEdge(base_column=key, foreign_table=table.name, foreign_column=key)
            )

        for d in range(n_decoys):
            # each decoy mimics one planted edge: same key column name and
            # dtype, but only `overlap` of its values land inside the domain
            j = int(rng.integers(0, n_planted))
            key, low, size = domains[j]
            overlap = _uniform(rng, self.profile.decoy_overlap)
            table_index = len(tables)
            tables.append(
                TableSpec(
                    name=f"decoy_{d}_{key}",
                    role="decoy",
                    key_column=key,
                    n_keys=size,
                    fan_out=1,
                    key_overlap=overlap,
                    key_offset=low + _DECOY_OFFSET + d * (self.profile.n_keys[1] + 1),
                    columns=self.schema.sample_foreign_columns(rng, table_index, 0),
                    data_seed=int(data_seeds[seed_cursor]),
                )
            )
            seed_cursor += 1

        for t in range(n_noise):
            # noise tables join nothing: disjoint key pool, unrelated key name
            j = int(rng.integers(0, n_planted))
            _, low, _ = domains[j]
            size = min(_randint(rng, profile.n_keys), n_base_rows)
            table_index = len(tables)
            tables.append(
                TableSpec(
                    name=f"noise_{t}",
                    role="noise",
                    key_column=f"ref{t}_uid",
                    n_keys=size,
                    fan_out=1,
                    key_overlap=0.0,
                    key_offset=low + _NOISE_OFFSET + t * (self.profile.n_keys[1] + 1),
                    columns=self.schema.sample_foreign_columns(rng, table_index, 0),
                    data_seed=int(data_seeds[seed_cursor]),
                )
            )
            seed_cursor += 1

        return tuple(domains), tuple(tables), tuple(joins)

    @property
    def max_tables(self) -> int:
        """Upper bound on foreign tables per scenario (sizes the seed pool)."""
        return self.profile.n_planted[1] + self.profile.n_decoys[1] + self.profile.n_noise_tables[1]


class TargetSampler:
    """Sample the target as a known function of planted features + noise."""

    def __init__(self, profile: str | SamplerProfile = QUICK_PROFILE):
        self.profile = resolve_profile(profile)

    def sample(
        self,
        rng: np.random.Generator,
        base_columns: tuple[ColumnSpec, ...],
        tables: tuple[TableSpec, ...],
    ) -> TargetSpec:
        profile = self.profile
        base_weights = tuple(
            (column.name, self._weight(rng))
            for column in base_columns
            if column.role == "feature" and column.kind == "numeric"
        )
        signal_weights = []
        for table in tables:
            if table.role != "planted":
                continue
            for column in table.columns:
                if column.role == "feature":
                    signal_weights.append((table.name, column.name, self._weight(rng)))
        task = (
            "classification"
            if rng.random() < profile.classification_fraction
            else "regression"
        )
        n_classes = 0
        if task == "classification":
            n_classes = int(
                profile.n_classes_choices[
                    int(rng.integers(0, len(profile.n_classes_choices)))
                ]
            )
        return TargetSpec(
            task=task,
            noise_level=_uniform(rng, profile.noise_level),
            n_classes=n_classes,
            base_weights=base_weights,
            signal_weights=tuple(signal_weights),
        )

    @staticmethod
    def _weight(rng: np.random.Generator) -> float:
        sign = 1.0 if rng.random() < 0.5 else -1.0
        return float(sign * rng.uniform(0.8, 2.0))


def generate_scenario(
    seed: int,
    index: int,
    profile: str | SamplerProfile = QUICK_PROFILE,
) -> ScenarioSpec:
    """Sample the complete spec for scenario ``(seed, index)``.

    Deterministic: ``SeedSequence(seed, spawn_key=(index,))`` roots every
    random draw, so two fresh processes produce byte-identical specs, and
    the spec embeds per-table ``data_seed`` values so materialisation is
    deterministic too.
    """
    profile = resolve_profile(profile)
    root = np.random.SeedSequence(seed, spawn_key=(index,))
    schema_seq, graph_seq, target_seq, data_seq = root.spawn(4)
    schema_rng = np.random.default_rng(schema_seq)
    graph_rng = np.random.default_rng(graph_seq)
    target_rng = np.random.default_rng(target_seq)

    graph_sampler = JoinGraphSampler(profile)
    # one body seed per potential table, plus base table and target noise
    n_seeds = graph_sampler.max_tables + 2
    data_seeds = data_seq.generate_state(n_seeds, dtype=np.uint32)

    n_base_rows, base_columns = SchemaSampler(profile).sample_base(schema_rng)
    key_domains, tables, joins = graph_sampler.sample(
        graph_rng, n_base_rows, data_seeds[2:]
    )
    target = TargetSampler(profile).sample(target_rng, base_columns, tables)

    return ScenarioSpec(
        scenario_id=f"sqlgen-{profile.name}-s{seed}-i{index}",
        seed=seed,
        index=index,
        n_base_rows=n_base_rows,
        key_domains=key_domains,
        base_columns=base_columns,
        tables=tables,
        joins=joins,
        target=target,
        base_seed=int(data_seeds[0]),
        target_seed=int(data_seeds[1]),
    )
