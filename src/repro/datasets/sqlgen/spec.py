"""Declarative scenario specifications with JSON round-trip and fingerprints.

A :class:`ScenarioSpec` is the *plan* for one synthetic workload: the base
table shape, every foreign table (planted / decoy / noise) with its key
geometry, the FK join graph, and the target function.  The spec is pure
data — materialisation (`materialise.py`) is a deterministic function of it,
so a spec document embedded in a repro file is enough to rebuild the exact
repository and replay a failing scenario standalone.

Specs round-trip losslessly through ``to_doc``/``from_doc`` and hash to a
stable fingerprint (blake2b over canonical sorted-keys JSON), which the
seeded-repeatability tests compare across fresh processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = [
    "ColumnSpec",
    "TableSpec",
    "JoinEdge",
    "TargetSpec",
    "ScenarioSpec",
    "SPEC_FORMAT",
]

SPEC_FORMAT = "arda-sqlgen-spec-v1"

_COLUMN_KINDS = ("numeric", "integer", "categorical")
_TABLE_ROLES = ("planted", "decoy", "noise")
_COLUMN_ROLES = ("feature", "noise")
_TASKS = ("regression", "classification")


@dataclass(frozen=True)
class ColumnSpec:
    """One non-key column of a generated table.

    ``kind`` picks the dtype family; ``cardinality`` bounds the distinct
    values for categorical/integer columns; ``role`` is ``"feature"`` when
    the column feeds the target function (only meaningful on planted
    tables) and ``"noise"`` otherwise; ``weight`` is the column's
    coefficient in the target function (0.0 for noise columns).
    """

    name: str
    kind: str
    cardinality: int = 0
    role: str = "noise"
    weight: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _COLUMN_KINDS:
            raise ValueError(f"unknown column kind {self.kind!r}")
        if self.role not in _COLUMN_ROLES:
            raise ValueError(f"unknown column role {self.role!r}")

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "cardinality": self.cardinality,
            "role": self.role,
            "weight": self.weight,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ColumnSpec":
        return cls(
            name=doc["name"],
            kind=doc["kind"],
            cardinality=int(doc["cardinality"]),
            role=doc["role"],
            weight=float(doc["weight"]),
        )


@dataclass(frozen=True)
class TableSpec:
    """One foreign table in a scenario.

    Key geometry drives what discovery *should* do with the table:

    * ``planted`` — ``key_column`` covers the referenced base key domain
      completely (containment ~1.0, unique keys, same column name), so the
      scorer must rank it at the top.  ``fan_out`` > 1 plants duplicate
      key rows whose per-key mean equals the planted value, exercising the
      join's duplicate pre-aggregation.
    * ``decoy`` — the key column reuses the base key's *name* and dtype but
      only ``key_overlap`` (0.05–0.35) of its values land in the base
      domain; the rest live at ``key_offset``.  A correct scorer keeps all
      decoys strictly below every planted table.
    * ``noise`` — keys drawn from a disjoint domain; never a sound join.
    """

    name: str
    role: str
    key_column: str
    n_keys: int
    fan_out: int = 1
    key_overlap: float = 1.0
    key_offset: int = 0
    columns: tuple[ColumnSpec, ...] = ()
    data_seed: int = 0

    def __post_init__(self) -> None:
        if self.role not in _TABLE_ROLES:
            raise ValueError(f"unknown table role {self.role!r}")
        if not 0.0 <= self.key_overlap <= 1.0:
            raise ValueError("key_overlap must be within [0, 1]")
        if self.fan_out < 1:
            raise ValueError("fan_out must be >= 1")

    @property
    def n_rows(self) -> int:
        return self.n_keys * self.fan_out

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "role": self.role,
            "key_column": self.key_column,
            "n_keys": self.n_keys,
            "fan_out": self.fan_out,
            "key_overlap": self.key_overlap,
            "key_offset": self.key_offset,
            "columns": [c.to_doc() for c in self.columns],
            "data_seed": self.data_seed,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TableSpec":
        return cls(
            name=doc["name"],
            role=doc["role"],
            key_column=doc["key_column"],
            n_keys=int(doc["n_keys"]),
            fan_out=int(doc["fan_out"]),
            key_overlap=float(doc["key_overlap"]),
            key_offset=int(doc["key_offset"]),
            columns=tuple(ColumnSpec.from_doc(c) for c in doc["columns"]),
            data_seed=int(doc["data_seed"]),
        )


@dataclass(frozen=True)
class JoinEdge:
    """One planted FK edge: ``base.base_column == foreign_table.foreign_column``."""

    base_column: str
    foreign_table: str
    foreign_column: str

    def to_doc(self) -> dict:
        return {
            "base_column": self.base_column,
            "foreign_table": self.foreign_table,
            "foreign_column": self.foreign_column,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "JoinEdge":
        return cls(
            base_column=doc["base_column"],
            foreign_table=doc["foreign_table"],
            foreign_column=doc["foreign_column"],
        )


@dataclass(frozen=True)
class TargetSpec:
    """The target as a known function of base + planted foreign features.

    ``signal_weights`` maps prefixed foreign feature names (the
    ``{table}.{column}`` names the pipeline materialises) to coefficients;
    ``base_weights`` does the same for base columns.  Regression targets are
    the weighted sum plus ``noise_level``-scaled gaussian noise;
    classification thresholds that sum into ``n_classes`` quantile bins.
    """

    task: str
    noise_level: float
    n_classes: int = 0
    base_weights: tuple[tuple[str, float], ...] = ()
    signal_weights: tuple[tuple[str, str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.task not in _TASKS:
            raise ValueError(f"unknown task {self.task!r}")
        if self.task == "classification" and self.n_classes < 2:
            raise ValueError("classification targets need n_classes >= 2")

    def planted_feature_names(self) -> tuple[str, ...]:
        """Prefixed column names the selector is expected to keep."""
        return tuple(f"{table}.{column}" for table, column, _ in self.signal_weights)

    def to_doc(self) -> dict:
        return {
            "task": self.task,
            "noise_level": self.noise_level,
            "n_classes": self.n_classes,
            "base_weights": [[n, w] for n, w in self.base_weights],
            "signal_weights": [[t, c, w] for t, c, w in self.signal_weights],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TargetSpec":
        return cls(
            task=doc["task"],
            noise_level=float(doc["noise_level"]),
            n_classes=int(doc["n_classes"]),
            base_weights=tuple((n, float(w)) for n, w in doc["base_weights"]),
            signal_weights=tuple(
                (t, c, float(w)) for t, c, w in doc["signal_weights"]
            ),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete plan for one scenario; materialisation is a pure function of it.

    ``key_domains`` maps each base key column to its disjoint integer value
    range ``(low, size)`` — per-key offsets keep the domains disjoint so a
    decoy on one key can never accidentally overlap another key's domain.
    """

    scenario_id: str
    seed: int
    index: int
    n_base_rows: int
    key_domains: tuple[tuple[str, int, int], ...]
    base_columns: tuple[ColumnSpec, ...]
    tables: tuple[TableSpec, ...]
    joins: tuple[JoinEdge, ...]
    target: TargetSpec
    base_seed: int = 0
    target_seed: int = 0
    format: str = field(default=SPEC_FORMAT)

    def planted_tables(self) -> tuple[TableSpec, ...]:
        return tuple(t for t in self.tables if t.role == "planted")

    def decoy_tables(self) -> tuple[TableSpec, ...]:
        return tuple(t for t in self.tables if t.role == "decoy")

    def noise_tables(self) -> tuple[TableSpec, ...]:
        return tuple(t for t in self.tables if t.role == "noise")

    def to_doc(self) -> dict:
        return {
            "format": self.format,
            "scenario_id": self.scenario_id,
            "seed": self.seed,
            "index": self.index,
            "n_base_rows": self.n_base_rows,
            "key_domains": [[k, lo, size] for k, lo, size in self.key_domains],
            "base_columns": [c.to_doc() for c in self.base_columns],
            "tables": [t.to_doc() for t in self.tables],
            "joins": [j.to_doc() for j in self.joins],
            "target": self.target.to_doc(),
            "base_seed": self.base_seed,
            "target_seed": self.target_seed,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ScenarioSpec":
        if doc.get("format") != SPEC_FORMAT:
            raise ValueError(
                f"unsupported scenario spec format {doc.get('format')!r}"
            )
        return cls(
            scenario_id=doc["scenario_id"],
            seed=int(doc["seed"]),
            index=int(doc["index"]),
            n_base_rows=int(doc["n_base_rows"]),
            key_domains=tuple(
                (k, int(lo), int(size)) for k, lo, size in doc["key_domains"]
            ),
            base_columns=tuple(ColumnSpec.from_doc(c) for c in doc["base_columns"]),
            tables=tuple(TableSpec.from_doc(t) for t in doc["tables"]),
            joins=tuple(JoinEdge.from_doc(j) for j in doc["joins"]),
            target=TargetSpec.from_doc(doc["target"]),
            base_seed=int(doc["base_seed"]),
            target_seed=int(doc["target_seed"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "ScenarioSpec":
        return cls.from_doc(json.loads(payload))

    def fingerprint(self) -> str:
        """Stable content hash of the spec (canonical JSON, blake2b-128)."""
        digest = hashlib.blake2b(self.to_json().encode("utf-8"), digest_size=16)
        return digest.hexdigest()
