"""Seeded scenario generator and planted-ground-truth sweep harness.

``sqlgen`` turns the whole ARDA engine into a fuzzable system.  Three seeded
samplers (modelled on the defio ``JoinSampler``/``AggregateSampler`` idiom)
compose a random relational workload:

* :class:`~repro.datasets.sqlgen.samplers.SchemaSampler` draws the shape —
  table count, per-table row counts, column dtypes and cardinalities;
* :class:`~repro.datasets.sqlgen.samplers.JoinGraphSampler` plants the FK
  graph — which tables genuinely join the base (known key pairs, tunable
  fan-out) and which are near-miss *decoys* whose key columns overlap the
  base domain only fractionally;
* :class:`~repro.datasets.sqlgen.samplers.TargetSampler` makes the target a
  known function of the planted foreign features plus noise.

Because the resulting :class:`~repro.datasets.sqlgen.spec.ScenarioSpec`
records exactly which joins and features were injected, every scenario is a
*self-checking correctness test*: :class:`~repro.datasets.sqlgen.sweep.ScenarioSweep`
materialises each spec into a disk repository, runs discovery + ``ARDA``
end to end, and scores the run against the plant (planted-join recall and
ranking vs decoys in discovery, planted-feature recall in selection,
holdout uplift vs the no-augmentation baseline).  Everything is repeatable
byte-for-byte from ``(seed, config)``; failing scenarios serialize to JSON
repro files that replay standalone (``python -m repro sweep --replay``).
"""

from repro.datasets.sqlgen.materialise import (
    iter_streaming_batches,
    materialise_scenario,
    repository_fingerprint,
    write_scenario_repository,
)
from repro.datasets.sqlgen.samplers import (
    FULL_PROFILE,
    QUICK_PROFILE,
    JoinGraphSampler,
    SamplerProfile,
    SchemaSampler,
    TargetSampler,
    generate_scenario,
    resolve_profile,
)
from repro.datasets.sqlgen.spec import (
    ColumnSpec,
    JoinEdge,
    ScenarioSpec,
    TableSpec,
    TargetSpec,
)
from repro.datasets.sqlgen.sweep import (
    ScenarioScore,
    ScenarioSweep,
    StreamingScore,
    SweepResult,
    replay_repro,
    run_streaming_scenario,
)

__all__ = [
    "ColumnSpec",
    "TableSpec",
    "JoinEdge",
    "TargetSpec",
    "ScenarioSpec",
    "SamplerProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "resolve_profile",
    "SchemaSampler",
    "JoinGraphSampler",
    "TargetSampler",
    "generate_scenario",
    "materialise_scenario",
    "write_scenario_repository",
    "repository_fingerprint",
    "iter_streaming_batches",
    "ScenarioScore",
    "StreamingScore",
    "SweepResult",
    "ScenarioSweep",
    "replay_repro",
    "run_streaming_scenario",
]
