"""Synthetic dataset and repository generators.

The paper evaluates on open datasets (NYC taxi / pickup / poverty, DARPA D3M
school tables, Kraken supercomputer telemetry, sklearn digits) joined against
tables found by NYU Auctus.  None of those are available offline, so this
package generates seeded synthetic analogues with the same *structure*: a base
table whose target depends partly on its own columns and partly on signal
hidden in a handful of joinable repository tables, surrounded by many noisy
tables and columns.  The generators control exactly where the signal lives,
which also makes the micro-benchmarks' ground truth (which features are real)
available.

:mod:`repro.datasets.sqlgen` generalises the fixed scenarios into a seeded
scenario *sampler* with planted ground truth — random schemas, FK graphs
with decoy tables, and targets that are known functions of planted foreign
features — plus the :class:`~repro.datasets.sqlgen.ScenarioSweep` harness
(``repro sweep``) that scores the full ARDA pipeline against each plant.
"""

from repro.datasets import sqlgen
from repro.datasets.bundle import AugmentationDataset
from repro.datasets.micro import (
    load_digits,
    load_kraken,
    make_micro_benchmark,
)
from repro.datasets.scenarios import (
    DATASET_NAMES,
    load_dataset,
    make_pickup,
    make_poverty,
    make_school,
    make_taxi,
)
from repro.datasets.synthetic import RelationalDatasetBuilder

__all__ = [
    "AugmentationDataset",
    "RelationalDatasetBuilder",
    "DATASET_NAMES",
    "load_dataset",
    "make_taxi",
    "make_pickup",
    "make_poverty",
    "make_school",
    "load_kraken",
    "load_digits",
    "make_micro_benchmark",
    "sqlgen",
]
