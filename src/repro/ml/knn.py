"""Brute-force k-nearest-neighbour models (also used by the Relief selector)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)


def pairwise_sq_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between the rows of A and the rows of B."""
    a_sq = np.sum(A**2, axis=1)[:, None]
    b_sq = np.sum(B**2, axis=1)[None, :]
    distances = a_sq + b_sq - 2.0 * (A @ B.T)
    np.maximum(distances, 0.0, out=distances)
    return distances


class _BaseKNN(BaseEstimator):
    """Shared neighbour-search machinery."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def _neighbors(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("model must be fitted before prediction")
        k = min(self.n_neighbors, self._X.shape[0])
        distances = pairwise_sq_distances(check_array(X), self._X)
        return np.argsort(distances, axis=1)[:, :k]


class KNeighborsClassifier(_BaseKNN, ClassifierMixin):
    """Majority-vote k-NN classifier."""

    def fit(self, X, y) -> "KNeighborsClassifier":
        """Store the training data."""
        X, y = check_X_y(X, y)
        self._X, self._y = X, y
        self.classes_ = np.unique(y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict the majority class among the k nearest training rows."""
        neighbors = self._neighbors(X)
        labels = self._y[neighbors]
        predictions = np.empty(len(labels), dtype=np.float64)
        for i, row in enumerate(labels):
            values, counts = np.unique(row, return_counts=True)
            predictions[i] = values[np.argmax(counts)]
        return predictions


class KNeighborsRegressor(_BaseKNN, RegressorMixin):
    """Mean-of-neighbours k-NN regressor."""

    def fit(self, X, y) -> "KNeighborsRegressor":
        """Store the training data."""
        X, y = check_X_y(X, y)
        self._X, self._y = X, y
        return self

    def predict(self, X) -> np.ndarray:
        """Predict the mean target of the k nearest training rows."""
        neighbors = self._neighbors(X)
        return self._y[neighbors].mean(axis=1)
