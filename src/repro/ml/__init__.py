"""Machine-learning substrate.

A compact, numpy-backed replacement for the scikit-learn components the ARDA
prototype relies on: decision trees and random forests (with impurity-based
feature importances), linear and logistic regression, lasso / elastic net,
linear and RBF-kernel SVMs, an L2,1-norm sparse-regression solver, nearest
neighbours, metrics, cross-validation utilities and a small AutoML search used
as the stand-in for the paper's Azure AutoML / Alpine Meadow comparators.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, RegressorMixin, clone
from repro.ml.metrics import (
    accuracy_score,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    r2_score,
    recall_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.binning import BinnedMatrix, resolve_tree_method
from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import ElasticNet, Lasso, LinearRegression, Ridge
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import KernelSVC, LinearSVC
from repro.ml.sparse_regression import SparseRegression
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.automl import AutoMLSearch
from repro.ml.persistence import estimator_from_state, estimator_to_state

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "RegressorMixin",
    "clone",
    "accuracy_score",
    "f1_score",
    "precision_score",
    "recall_score",
    "log_loss",
    "mean_absolute_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "BinnedMatrix",
    "resolve_tree_method",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "LinearRegression",
    "Ridge",
    "Lasso",
    "ElasticNet",
    "LogisticRegression",
    "LinearSVC",
    "KernelSVC",
    "SparseRegression",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "AutoMLSearch",
    "estimator_to_state",
    "estimator_from_state",
]
