"""Estimator base classes and cloning."""

from __future__ import annotations

import copy
import inspect

import numpy as np


class BaseEstimator:
    """Base class for all estimators.

    Estimators follow the familiar ``fit(X, y)`` / ``predict(X)`` protocol with
    hyper-parameters captured as constructor keyword arguments, so they can be
    cloned (re-instantiated unfitted with the same hyper-parameters) by the
    model-selection and feature-selection machinery.
    """

    def get_params(self) -> dict:
        """Hyper-parameters as passed to the constructor."""
        signature = inspect.signature(type(self).__init__)
        params = {}
        for name in signature.parameters:
            if name == "self":
                continue
            if hasattr(self, name):
                params[name] = getattr(self, name)
        return params

    def set_params(self, **params) -> "BaseEstimator":
        """Set hyper-parameters in place and return self."""
        valid = self.get_params()
        for key, value in params.items():
            if key not in valid:
                raise ValueError(f"invalid parameter {key!r} for {type(self).__name__}")
            setattr(self, key, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Marker and default scoring for classifiers (accuracy)."""

    _estimator_type = "classifier"

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        from repro.ml.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


class RegressorMixin:
    """Marker and default scoring for regressors (R^2)."""

    _estimator_type = "regressor"

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R^2 coefficient of determination on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(y, self.predict(X))


def is_classifier(estimator) -> bool:
    """Whether an estimator is a classifier."""
    return getattr(estimator, "_estimator_type", None) == "classifier"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of an estimator with the same hyper-parameters."""
    params = {k: copy.deepcopy(v) for k, v in estimator.get_params().items()}
    return type(estimator)(**params)


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a feature matrix and target vector."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit an estimator on zero samples")
    return X, y


def check_fit_inputs(X, y) -> tuple:
    """Validate ``(X, y)`` for fitting; ``X`` may be a prebuilt BinnedMatrix.

    The shared entry point for trees and forests: float matrices go through
    :func:`check_X_y`, quantised matrices only need the target coerced and the
    row counts reconciled.
    """
    from repro.ml.binning import BinnedMatrix

    if isinstance(X, BinnedMatrix):
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.n_rows != y.shape[0]:
            raise ValueError(f"X has {X.n_rows} rows but y has {y.shape[0]} entries")
        if X.n_rows == 0:
            raise ValueError("cannot fit an estimator on zero samples")
        return X, y
    return check_X_y(X, y)


def check_array(X) -> np.ndarray:
    """Validate and coerce a feature matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
    return X
