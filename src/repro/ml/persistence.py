"""Estimator state serialisation for the serving artifact.

Fitted estimators flatten into ``(doc, arrays)`` pairs — a JSON-serialisable
document plus named float/int arrays — which the serving layer writes as
binary pages in the same page format the table persistence layer uses
(:mod:`repro.serving.artifact`).  Only the estimator kinds the pipeline
actually serves are registered (trees and forests, the paper's estimator);
asking for anything else raises a clear error instead of falling back to
pickle, so artifacts stay inspectable and version-checkable.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

# kind tag <-> estimator class; tags are stored in artifact headers, so they
# are part of the artifact format and must stay stable
_ESTIMATOR_KINDS: dict[str, type] = {
    "decision_tree_regressor": DecisionTreeRegressor,
    "decision_tree_classifier": DecisionTreeClassifier,
    "random_forest_regressor": RandomForestRegressor,
    "random_forest_classifier": RandomForestClassifier,
}
_KIND_OF_CLASS = {cls: kind for kind, cls in _ESTIMATOR_KINDS.items()}


def serializable_estimator_kinds() -> list[str]:
    """The registered estimator kind tags, in registration order."""
    return list(_ESTIMATOR_KINDS)


def estimator_to_state(estimator: BaseEstimator) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten a fitted estimator into ``(doc, arrays)``.

    The doc carries a ``kind`` tag naming the registered class; arrays carry
    the numeric model state (see each class's ``to_state``).  Raises
    ``TypeError`` for estimator types without a registered state format.
    """
    kind = _KIND_OF_CLASS.get(type(estimator))
    if kind is None:
        raise TypeError(
            f"{type(estimator).__name__} has no registered serialisation; "
            f"serialisable kinds: {serializable_estimator_kinds()}"
        )
    doc, arrays = estimator.to_state()
    return {"kind": kind, **doc}, arrays


def estimator_from_state(doc: dict, arrays: dict[str, np.ndarray]) -> BaseEstimator:
    """Rebuild a fitted estimator from :func:`estimator_to_state` output.

    The restored estimator predicts bit-identically to the one serialised.
    Raises ``ValueError`` on an unknown ``kind`` tag (e.g. an artifact written
    by a newer build).
    """
    kind = doc.get("kind")
    cls = _ESTIMATOR_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown estimator kind {kind!r}; "
            f"this build reads: {serializable_estimator_kinds()}"
        )
    return cls.from_state(doc, arrays)
