"""Prediction-quality metrics for classification and regression."""

from __future__ import annotations

import numpy as np


def _as_1d(values) -> np.ndarray:
    return np.asarray(values).ravel()


# -- classification ------------------------------------------------------------


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching predictions."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def _binary_counts(y_true, y_pred, positive) -> tuple[int, int, int]:
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    return tp, fp, fn


def precision_score(y_true, y_pred, average: str = "macro") -> float:
    """Precision; macro-averaged over classes by default."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    scores = []
    for cls in np.unique(y_true):
        tp, fp, _ = _binary_counts(y_true, y_pred, cls)
        scores.append(tp / (tp + fp) if (tp + fp) else 0.0)
    if average == "macro":
        return float(np.mean(scores)) if scores else 0.0
    raise ValueError(f"unsupported average {average!r}")


def recall_score(y_true, y_pred, average: str = "macro") -> float:
    """Recall; macro-averaged over classes by default."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    scores = []
    for cls in np.unique(y_true):
        tp, _, fn = _binary_counts(y_true, y_pred, cls)
        scores.append(tp / (tp + fn) if (tp + fn) else 0.0)
    if average == "macro":
        return float(np.mean(scores)) if scores else 0.0
    raise ValueError(f"unsupported average {average!r}")


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    """F1 score; macro-averaged over classes by default."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    scores = []
    for cls in np.unique(y_true):
        tp, fp, fn = _binary_counts(y_true, y_pred, cls)
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        denom = precision + recall
        scores.append(2 * precision * recall / denom if denom else 0.0)
    if average == "macro":
        return float(np.mean(scores)) if scores else 0.0
    raise ValueError(f"unsupported average {average!r}")


def log_loss(y_true, probabilities, eps: float = 1e-12) -> float:
    """Multi-class logarithmic loss.

    ``probabilities`` is an ``(n_samples, n_classes)`` matrix whose columns
    correspond to ``sorted(unique(y_true))``.
    """
    y_true = _as_1d(y_true)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    probabilities = np.clip(probabilities, eps, 1.0 - eps)
    classes = np.unique(y_true)
    index = {cls: i for i, cls in enumerate(classes)}
    picks = np.array([index[v] for v in y_true])
    chosen = probabilities[np.arange(len(y_true)), picks]
    return float(-np.mean(np.log(chosen)))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Confusion matrix with rows = true classes, columns = predicted classes."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    index = {cls: i for i, cls in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix


# -- regression -----------------------------------------------------------------


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def mean_squared_error(y_true, y_pred) -> float:
    """Mean squared error."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination R^2 (1.0 is perfect, 0.0 is the mean model)."""
    y_true, y_pred = _as_1d(y_true), _as_1d(y_pred)
    total = float(np.sum((y_true - np.mean(y_true)) ** 2))
    residual = float(np.sum((y_true - y_pred) ** 2))
    if total == 0.0:
        return 0.0 if residual > 0 else 1.0
    return 1.0 - residual / total
