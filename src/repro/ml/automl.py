"""A small AutoML search used as the stand-in for Azure AutoML / Alpine Meadow.

The paper compares ARDA against black-box AutoML systems fitted on either the
base table or the fully-materialised join under a wall-clock budget.  This
module plays that role: a time-boxed random search over model families and
hyper-parameters, scored with cross-validation, returning the best fitted
model.  It is deliberately model-agnostic so the ARDA pipeline can plug it in
as its final estimator, exactly as the paper does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseEstimator, clone
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.linear import Lasso, Ridge
from repro.ml.logistic import LogisticRegression
from repro.ml.model_selection import cross_val_score
from repro.ml.svm import KernelSVC, LinearSVC


@dataclass
class SearchTrial:
    """One evaluated (model, hyper-parameters) candidate."""

    model_name: str
    params: dict
    score: float
    elapsed: float


@dataclass
class AutoMLResult:
    """Outcome of an AutoML search."""

    best_model: BaseEstimator
    best_score: float
    trials: list[SearchTrial] = field(default_factory=list)


def _classification_space(rng: np.random.Generator) -> list[tuple[str, BaseEstimator]]:
    """Sample one hyper-parameter configuration per classifier family."""
    return [
        (
            "random_forest",
            RandomForestClassifier(
                n_estimators=int(rng.choice([10, 20, 40])),
                max_depth=int(rng.choice([6, 10, 14])),
                random_state=int(rng.integers(0, 10_000)),
            ),
        ),
        ("logistic_regression", LogisticRegression(C=float(rng.choice([0.1, 1.0, 10.0])))),
        ("linear_svc", LinearSVC(C=float(rng.choice([0.1, 1.0, 10.0])))),
        ("kernel_svc", KernelSVC(C=float(rng.choice([0.5, 1.0, 5.0])))),
        ("knn", KNeighborsClassifier(n_neighbors=int(rng.choice([3, 5, 9])))),
    ]


def _regression_space(rng: np.random.Generator) -> list[tuple[str, BaseEstimator]]:
    """Sample one hyper-parameter configuration per regressor family."""
    return [
        (
            "random_forest",
            RandomForestRegressor(
                n_estimators=int(rng.choice([10, 20, 40])),
                max_depth=int(rng.choice([6, 10, 14])),
                random_state=int(rng.integers(0, 10_000)),
            ),
        ),
        ("ridge", Ridge(alpha=float(rng.choice([0.1, 1.0, 10.0])))),
        ("lasso", Lasso(alpha=float(rng.choice([0.01, 0.1, 1.0])))),
        ("knn", KNeighborsRegressor(n_neighbors=int(rng.choice([3, 5, 9])))),
    ]


class AutoMLSearch(BaseEstimator):
    """Time-boxed random model search with cross-validated scoring.

    Parameters
    ----------
    task:
        ``"classification"`` or ``"regression"``.
    time_budget:
        Wall-clock budget in seconds; the search stops starting new trials once
        it is exhausted (at least one trial always runs).
    max_trials:
        Hard cap on the number of (model, configuration) trials.
    cv:
        Number of cross-validation folds used to score each trial.
    """

    def __init__(
        self,
        task: str = "classification",
        time_budget: float = 10.0,
        max_trials: int = 12,
        cv: int = 3,
        random_state: int | None = 0,
    ):
        if task not in ("classification", "regression"):
            raise ValueError("task must be 'classification' or 'regression'")
        self.task = task
        self.time_budget = time_budget
        self.max_trials = max_trials
        self.cv = cv
        self.random_state = random_state
        self.result_: AutoMLResult | None = None

    @property
    def _estimator_type(self) -> str:
        return "classifier" if self.task == "classification" else "regressor"

    def fit(self, X, y) -> "AutoMLSearch":
        """Run the search and fit the winning model on all of the data."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        rng = np.random.default_rng(self.random_state)
        start = time.perf_counter()
        trials: list[SearchTrial] = []
        best_score, best_model = -np.inf, None
        trial_count = 0
        while trial_count < self.max_trials:
            if self.task == "classification":
                space = _classification_space(rng)
            else:
                space = _regression_space(rng)
            for model_name, model in space:
                if trial_count >= self.max_trials:
                    break
                elapsed = time.perf_counter() - start
                if trials and elapsed > self.time_budget:
                    break
                trial_start = time.perf_counter()
                try:
                    scores = cross_val_score(model, X, y, cv=self.cv)
                    score = float(np.mean(scores)) if len(scores) else -np.inf
                except (ValueError, np.linalg.LinAlgError):
                    score = -np.inf
                trial_elapsed = time.perf_counter() - trial_start
                trials.append(
                    SearchTrial(model_name, model.get_params(), score, trial_elapsed)
                )
                trial_count += 1
                if score > best_score:
                    best_score, best_model = score, model
            if time.perf_counter() - start > self.time_budget:
                break
        if best_model is None:
            raise RuntimeError("AutoML search evaluated no successful trial")
        fitted = clone(best_model)
        fitted.fit(X, y)
        self.result_ = AutoMLResult(best_model=fitted, best_score=best_score, trials=trials)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the best model found by the search."""
        if self.result_ is None:
            raise RuntimeError("AutoMLSearch must be fitted before prediction")
        return self.result_.best_model.predict(X)

    def score(self, X, y) -> float:
        """Score with the best model found by the search."""
        if self.result_ is None:
            raise RuntimeError("AutoMLSearch must be fitted before scoring")
        return self.result_.best_model.score(X, y)

    @property
    def best_model_(self) -> BaseEstimator:
        """The fitted winning model."""
        if self.result_ is None:
            raise RuntimeError("AutoMLSearch must be fitted first")
        return self.result_.best_model
