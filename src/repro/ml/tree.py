"""CART decision trees for classification and regression.

The trees use the classic greedy split search: at every node each candidate
feature is sorted and every boundary between distinct values is evaluated with
a vectorised impurity computation (Gini for classification, variance for
regression).  Feature importances are accumulated as impurity decrease weighted
by the number of samples reaching the node, matching the quantity the paper's
Random-Forest ranker consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    left: int
    right: int
    value: np.ndarray  # class-probability vector (clf) or [mean] (reg)


def _resolve_max_features(option, n_features: int) -> int:
    """Turn a max_features option into an integer count."""
    if option is None or option == "all":
        return n_features
    if option == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if option == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(option, float) and 0 < option <= 1:
        return max(1, int(option * n_features))
    if isinstance(option, (int, np.integer)) and option > 0:
        return min(int(option), n_features)
    raise ValueError(f"invalid max_features {option!r}")


class _BaseDecisionTree(BaseEstimator):
    """Shared CART construction machinery."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._nodes: list[_Node] = []
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # subclasses provide these -------------------------------------------------

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split_for_feature(
        self, values: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """Return ``(impurity_decrease, threshold)`` or ``(-inf, 0)`` if none."""
        raise NotImplementedError

    # construction --------------------------------------------------------------

    def _fit_tree(self, X: np.ndarray, y: np.ndarray) -> None:
        self.n_features_ = X.shape[1]
        self._nodes = []
        self._importances = np.zeros(self.n_features_, dtype=np.float64)
        self._rng = np.random.default_rng(self.random_state)
        self._n_total = X.shape[0]
        self._build(X, y, depth=0)
        total = self._importances.sum()
        if total > 0:
            self.feature_importances_ = self._importances / total
        else:
            self.feature_importances_ = np.zeros(self.n_features_, dtype=np.float64)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> int:
        node_index = len(self._nodes)
        value = self._node_value(y)
        self._nodes.append(_Node(-1, 0.0, -1, -1, value))
        n = len(y)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or self._node_impurity(y) <= 1e-12
        ):
            return node_index

        n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        if n_candidates < self.n_features_:
            candidates = self._rng.choice(self.n_features_, size=n_candidates, replace=False)
        else:
            candidates = np.arange(self.n_features_)

        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for feature in candidates:
            gain, threshold = self._best_split_for_feature(X[:, feature], y)
            if gain > best_gain + 1e-15:
                best_gain, best_feature, best_threshold = gain, int(feature), threshold
        if best_feature < 0:
            return node_index

        mask = X[:, best_feature] <= best_threshold
        n_left = int(mask.sum())
        if n_left < self.min_samples_leaf or (n - n_left) < self.min_samples_leaf:
            return node_index

        self._importances[best_feature] += best_gain * (n / self._n_total)
        left_index = self._build(X[mask], y[mask], depth + 1)
        right_index = self._build(X[~mask], y[~mask], depth + 1)
        node = self._nodes[node_index]
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = left_index
        node.right = right_index
        return node_index

    # inference ------------------------------------------------------------------

    def _predict_values(self, X: np.ndarray) -> np.ndarray:
        """Route every row to a leaf and return the stacked leaf values."""
        X = check_array(X)
        if not self._nodes:
            raise RuntimeError("tree must be fitted before prediction")
        out = np.empty((X.shape[0], len(self._nodes[0].value)), dtype=np.float64)
        indices = np.arange(X.shape[0])
        self._route(X, indices, 0, out)
        return out

    def _route(self, X: np.ndarray, indices: np.ndarray, node_index: int, out: np.ndarray) -> None:
        node = self._nodes[node_index]
        if node.feature < 0 or len(indices) == 0:
            out[indices] = node.value
            return
        mask = X[indices, node.feature] <= node.threshold
        self._route(X, indices[mask], node.left, out)
        self._route(X, indices[~mask], node.right, out)

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""

        def walk(index: int) -> int:
            node = self._nodes[index]
            if node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if not self._nodes:
            return 0
        return walk(0)


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """CART regression tree minimising within-node variance."""

    def fit(self, X, y) -> "DecisionTreeRegressor":
        """Grow the tree on the training data."""
        X, y = check_X_y(X, y)
        self._fit_tree(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict the mean target of the leaf each row falls into."""
        return self._predict_values(X)[:, 0]

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([float(np.mean(y))])

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def _best_split_for_feature(self, values, y) -> tuple[float, float]:
        order = np.argsort(values, kind="stable")
        v, t = values[order], y[order]
        n = len(t)
        if n < 2:
            return -np.inf, 0.0
        # candidate boundaries: positions where the feature value changes
        boundaries = np.nonzero(np.diff(v) > 0)[0]
        if len(boundaries) == 0:
            return -np.inf, 0.0
        csum = np.cumsum(t)
        csum_sq = np.cumsum(t * t)
        total_sum, total_sq = csum[-1], csum_sq[-1]
        n_left = boundaries + 1
        n_right = n - n_left
        left_sum = csum[boundaries]
        left_sq = csum_sq[boundaries]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        sse_left = left_sq - left_sum**2 / n_left
        sse_right = right_sq - right_sum**2 / n_right
        sse_parent = total_sq - total_sum**2 / n
        gains = (sse_parent - sse_left - sse_right) / n
        best = int(np.argmax(gains))
        if gains[best] <= 0:
            return -np.inf, 0.0
        boundary = boundaries[best]
        threshold = (v[boundary] + v[boundary + 1]) / 2.0
        return float(gains[best]), float(threshold)


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """CART classification tree minimising Gini impurity."""

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on the training data."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self._class_index = {cls: i for i, cls in enumerate(self.classes_)}
        codes = np.searchsorted(self.classes_, y)
        self._fit_tree(X, codes.astype(np.float64))
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates (leaf class frequencies)."""
        return self._predict_values(X)

    def predict(self, X) -> np.ndarray:
        """Predict the majority class of the leaf each row falls into."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def _node_value(self, codes: np.ndarray) -> np.ndarray:
        counts = np.bincount(codes.astype(np.int64), minlength=len(self.classes_))
        return counts / max(counts.sum(), 1)

    def _node_impurity(self, codes: np.ndarray) -> float:
        probabilities = self._node_value(codes)
        return float(1.0 - np.sum(probabilities**2))

    def _best_split_for_feature(self, values, codes) -> tuple[float, float]:
        order = np.argsort(values, kind="stable")
        v = values[order]
        c = codes[order].astype(np.int64)
        n = len(c)
        if n < 2:
            return -np.inf, 0.0
        boundaries = np.nonzero(np.diff(v) > 0)[0]
        if len(boundaries) == 0:
            return -np.inf, 0.0
        n_classes = len(self.classes_)
        one_hot = np.zeros((n, n_classes), dtype=np.float64)
        one_hot[np.arange(n), c] = 1.0
        cum_counts = np.cumsum(one_hot, axis=0)
        total_counts = cum_counts[-1]
        left_counts = cum_counts[boundaries]
        right_counts = total_counts - left_counts
        n_left = (boundaries + 1).astype(np.float64)
        n_right = n - n_left
        gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
        gini_parent = 1.0 - np.sum((total_counts / n) ** 2)
        gains = gini_parent - (n_left / n) * gini_left - (n_right / n) * gini_right
        best = int(np.argmax(gains))
        if gains[best] <= 0:
            return -np.inf, 0.0
        boundary = boundaries[best]
        threshold = (v[boundary] + v[boundary + 1]) / 2.0
        return float(gains[best]), float(threshold)
