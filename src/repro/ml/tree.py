"""CART decision trees for classification and regression.

Two split-search kernels share one construction loop:

* ``tree_method="exact"`` — the classic greedy search: at every node each
  candidate feature is sorted and every boundary between distinct values is
  evaluated with a vectorised impurity computation (Gini for classification,
  variance for regression).  This is the reference implementation the
  histogram kernel is property-tested against.
* ``tree_method="hist"`` — the feature is quantised once (per tree, or once
  per forest / RIFS run when a shared :class:`~repro.ml.binning.BinnedMatrix`
  is passed in) and the node accumulates per-bin count/sum histograms, then
  scans at most ``max_bins`` boundaries instead of sorting ``n`` rows.  On
  features whose distinct-value count fits into the bin budget the two kernels
  are bit-identical (see :mod:`repro.ml.binning` for why).

Construction recurses over *row-index arrays* into the training data, so a
forest's bootstrap resample is an index draw, not a matrix copy.  Feature
importances are accumulated as impurity decrease weighted by the number of
samples reaching the node, matching the quantity the paper's Random-Forest
ranker consumes.  Fitted trees always predict on raw float matrices: histogram
splits are translated back to float thresholds at fit time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_fit_inputs,
)
from repro.ml.binning import DEFAULT_MAX_BINS, BinnedMatrix, resolve_tree_method


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int
    threshold: float
    left: int
    right: int
    value: np.ndarray  # class-probability vector (clf) or [mean] (reg)


def _resolve_max_features(option, n_features: int) -> int:
    """Turn a max_features option into an integer count."""
    if option is None or option == "all":
        return n_features
    if option == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if option == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(option, float) and 0 < option <= 1:
        return max(1, int(option * n_features))
    if isinstance(option, (int, np.integer)) and option > 0:
        return min(int(option), n_features)
    raise ValueError(f"invalid max_features {option!r}")


class _BaseDecisionTree(BaseEstimator):
    """Shared CART construction machinery."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
        tree_method: str | None = None,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins
        self._nodes: list[_Node] = []
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # subclasses provide these -------------------------------------------------

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split_for_feature(
        self, values: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """Return ``(impurity_decrease, threshold)`` or ``(-inf, 0)`` if none."""
        raise NotImplementedError

    def _hist_gains(
        self,
        flat: np.ndarray,
        y: np.ndarray,
        cum_n: np.ndarray,
        k: int,
        n_bins: int,
        m: int,
        valid: np.ndarray,
    ) -> np.ndarray:
        """Per-boundary impurity decreases, shape ``(k, n_bins - 1)``.

        ``flat`` holds each row's bin code offset by ``feature * n_bins`` (the
        shared bincount key), ``cum_n`` the per-feature cumulative bin counts
        and ``valid`` masks boundaries with rows on both sides.
        """
        raise NotImplementedError

    def _hist_search(self, rows: np.ndarray, candidates: np.ndarray, y: np.ndarray):
        """Histogram split search over all candidate features at once.

        One shared ``bincount`` per statistic covers every candidate feature —
        node cost is O(m·k + k·bins) with a handful of numpy calls, instead of
        O(m log m) *per feature* for the exact kernel's sort.  Returns
        ``(best_gains, best_bins, counts)`` aligned with ``candidates``;
        features without a usable split get ``-inf``.

        Boundary semantics match the exact kernel: every boundary with rows on
        both sides is scored, duplicate boundaries created by empty bins tie
        with identical gains and ``argmax`` keeps the first — the non-empty
        bin — exactly where the sorted scan would have cut.
        """
        binned = self._binned
        k = len(candidates)
        if k == 0:  # zero-feature matrices grow a single constant leaf
            return np.full(0, -np.inf), np.full(0, -1), None
        n_bins = int(binned.n_bins[candidates].max())
        if n_bins < 2:
            return np.full(k, -np.inf), np.full(k, -1), None
        sub = binned.codes[np.ix_(rows, candidates)].astype(np.int64)
        m = len(rows)
        sub += np.arange(k, dtype=np.int64) * n_bins  # offset codes per feature in place
        flat = sub.ravel()
        counts = np.bincount(flat, minlength=k * n_bins).reshape(k, n_bins)
        cum_n = np.cumsum(counts, axis=1)
        n_left = cum_n[:, :-1]
        valid = (n_left > 0) & (n_left < m)
        gains = self._hist_gains(flat, y, cum_n, k, n_bins, m, valid)
        gains = np.where(valid, gains, -np.inf)
        best = np.argmax(gains, axis=1)
        best_gains = gains[np.arange(k), best]
        best_gains = np.where(best_gains > 0, best_gains, -np.inf)
        return best_gains, best, counts

    # construction --------------------------------------------------------------

    def _fit_tree(self, X, y: np.ndarray, sample_indices: np.ndarray | None = None) -> None:
        if isinstance(X, BinnedMatrix):
            if resolve_tree_method(self.tree_method) == "exact":
                raise ValueError(
                    "the exact kernel cannot train on a BinnedMatrix; "
                    "pass the float matrix instead"
                )
            self._binned, self._X = X, None
            self._method = "hist"
        else:
            self._method = resolve_tree_method(self.tree_method)
            if self._method == "hist":
                self._binned = BinnedMatrix.from_matrix(X, max_bins=self.max_bins)
                self._X = None
            else:
                self._binned, self._X = None, X
        n_rows, self.n_features_ = X.shape
        self._y = y
        self._nodes = []
        self._importances = np.zeros(self.n_features_, dtype=np.float64)
        self._rng = np.random.default_rng(self.random_state)
        if sample_indices is None:
            rows = np.arange(n_rows)
        else:
            rows = np.asarray(sample_indices, dtype=np.int64)
        self._n_total = len(rows)
        self._build(rows, depth=0)
        total = self._importances.sum()
        if total > 0:
            self.feature_importances_ = self._importances / total
        else:
            self.feature_importances_ = np.zeros(self.n_features_, dtype=np.float64)
        # drop training references: a shared BinnedMatrix must not be pinned by
        # every tree of a forest, and fitted trees only ever see float inputs
        self._binned = self._X = self._y = None

    def _build(self, rows: np.ndarray, depth: int) -> int:
        node_index = len(self._nodes)
        y = self._y[rows]
        value = self._node_value(y)
        self._nodes.append(_Node(-1, 0.0, -1, -1, value))
        n = len(rows)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or self._node_impurity(y) <= 1e-12
        ):
            return node_index

        n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        if n_candidates < self.n_features_:
            candidates = self._rng.choice(self.n_features_, size=n_candidates, replace=False)
        else:
            candidates = np.arange(self.n_features_)

        best_gain, best_feature, best_threshold, best_bin = 0.0, -1, 0.0, -1
        if self._method == "hist":
            gains, bins, counts = self._hist_search(rows, candidates, y)
            best_index = -1
            for index in range(len(candidates)):
                if gains[index] > best_gain + 1e-15:
                    best_gain = float(gains[index])
                    best_feature = int(candidates[index])
                    best_bin = int(bins[index])
                    best_index = index
            if best_feature >= 0:
                # first non-empty bin to the right of the cut fixes the threshold
                above = np.nonzero(counts[best_index, best_bin + 1:])[0]
                bin_hi = best_bin + 1 + int(above[0])
                best_threshold = self._binned.split_threshold(best_feature, best_bin, bin_hi)
        else:
            for feature in candidates:
                gain, threshold = self._best_split_for_feature(self._X[rows, feature], y)
                if gain > best_gain + 1e-15:
                    best_gain, best_feature, best_threshold = gain, int(feature), threshold
        if best_feature < 0:
            return node_index

        if self._method == "hist":
            mask = self._binned.codes[rows, best_feature] <= best_bin
        else:
            mask = self._X[rows, best_feature] <= best_threshold
        n_left = int(mask.sum())
        if n_left < self.min_samples_leaf or (n - n_left) < self.min_samples_leaf:
            return node_index

        self._importances[best_feature] += best_gain * (n / self._n_total)
        left_index = self._build(rows[mask], depth + 1)
        right_index = self._build(rows[~mask], depth + 1)
        node = self._nodes[node_index]
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = left_index
        node.right = right_index
        return node_index

    # inference ------------------------------------------------------------------

    def _predict_values(self, X: np.ndarray) -> np.ndarray:
        """Route every row to a leaf and return the stacked leaf values."""
        X = check_array(X)
        if not self._nodes:
            raise RuntimeError("tree must be fitted before prediction")
        out = np.empty((X.shape[0], len(self._nodes[0].value)), dtype=np.float64)
        indices = np.arange(X.shape[0])
        self._route(X, indices, 0, out)
        return out

    def _route(self, X: np.ndarray, indices: np.ndarray, node_index: int, out: np.ndarray) -> None:
        node = self._nodes[node_index]
        if node.feature < 0 or len(indices) == 0:
            out[indices] = node.value
            return
        mask = X[indices, node.feature] <= node.threshold
        self._route(X, indices[mask], node.left, out)
        self._route(X, indices[~mask], node.right, out)

    # persistence ----------------------------------------------------------------

    _PARAM_NAMES = (
        "max_depth",
        "min_samples_split",
        "min_samples_leaf",
        "max_features",
        "random_state",
        "tree_method",
        "max_bins",
    )

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The fitted tree as ``(plain doc, named arrays)``.

        The doc is JSON-serialisable (hyper-parameters and shape info); node
        structure travels as flat arrays suited to the binary page format of
        :mod:`repro.serving.artifact`.  :meth:`from_state` inverts it exactly:
        a round-tripped tree predicts bit-identically.
        """
        if not self._nodes:
            raise RuntimeError("cannot serialise an unfitted tree")
        doc = {
            "params": {name: getattr(self, name) for name in self._PARAM_NAMES},
            "n_features": int(self.n_features_),
        }
        arrays = {
            "feature": np.array([n.feature for n in self._nodes], dtype=np.int32),
            "threshold": np.array([n.threshold for n in self._nodes], dtype=np.float64),
            "left": np.array([n.left for n in self._nodes], dtype=np.int32),
            "right": np.array([n.right for n in self._nodes], dtype=np.int32),
            "values": np.stack([n.value for n in self._nodes]).astype(np.float64),
            "importances": np.asarray(self.feature_importances_, dtype=np.float64),
        }
        return doc, arrays

    def _restore_state(self, doc: dict, arrays: dict[str, np.ndarray]) -> None:
        params = doc["params"]
        for name in self._PARAM_NAMES:
            if name in params:
                setattr(self, name, params[name])
        self.n_features_ = int(doc["n_features"])
        self._nodes = [
            _Node(
                int(feature),
                float(threshold),
                int(left),
                int(right),
                np.asarray(value, dtype=np.float64),
            )
            for feature, threshold, left, right, value in zip(
                arrays["feature"],
                arrays["threshold"],
                arrays["left"],
                arrays["right"],
                arrays["values"],
            )
        ]
        self.feature_importances_ = np.asarray(arrays["importances"], dtype=np.float64)

    @classmethod
    def from_state(cls, doc: dict, arrays: dict[str, np.ndarray]):
        """Rebuild a fitted tree written by :meth:`to_state`."""
        tree = cls()
        tree._restore_state(doc, arrays)
        return tree

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self._nodes)

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""

        def walk(index: int) -> int:
            node = self._nodes[index]
            if node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if not self._nodes:
            return 0
        return walk(0)


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """CART regression tree minimising within-node variance."""

    def fit(self, X, y, sample_indices: np.ndarray | None = None) -> "DecisionTreeRegressor":
        """Grow the tree on the training data.

        ``X`` may be a float matrix or a prebuilt (shared)
        :class:`~repro.ml.binning.BinnedMatrix`; ``sample_indices`` restricts
        training to the given rows (with repeats — a bootstrap draw) without
        copying the data.
        """
        X, y = check_fit_inputs(X, y)
        self._fit_tree(X, y, sample_indices)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict the mean target of the leaf each row falls into."""
        return self._predict_values(X)[:, 0]

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([float(np.mean(y))])

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y))

    def _best_split_for_feature(self, values, y) -> tuple[float, float]:
        order = np.argsort(values, kind="stable")
        v, t = values[order], y[order]
        n = len(t)
        if n < 2:
            return -np.inf, 0.0
        # candidate boundaries: positions where the feature value changes
        boundaries = np.nonzero(np.diff(v) > 0)[0]
        if len(boundaries) == 0:
            return -np.inf, 0.0
        csum = np.cumsum(t)
        total_sum = csum[-1]
        n_left = boundaries + 1
        n_right = n - n_left
        left_sum = csum[boundaries]
        right_sum = total_sum - left_sum
        # variance decrease with the sum-of-squares terms cancelled out:
        # (sse_parent - sse_left - sse_right) == lhs below, since the raw
        # second moments appear once positively and once negatively
        gains = (left_sum**2 / n_left + right_sum**2 / n_right - total_sum**2 / n) / n
        best = int(np.argmax(gains))
        if gains[best] <= 0:
            return -np.inf, 0.0
        boundary = boundaries[best]
        threshold = (v[boundary] + v[boundary + 1]) / 2.0
        return float(gains[best]), float(threshold)

    def _hist_gains(self, flat, y, cum_n, k, n_bins, m, valid) -> np.ndarray:
        sums = np.bincount(
            flat, weights=np.repeat(y, k), minlength=k * n_bins
        ).reshape(k, n_bins)
        cum_sum = np.cumsum(sums, axis=1)
        total_sum = cum_sum[:, -1:]
        n_left = cum_n[:, :-1]
        n_right = m - n_left
        left_sum = cum_sum[:, :-1]
        right_sum = total_sum - left_sum
        safe_left = np.where(valid, n_left, 1)
        safe_right = np.where(valid, n_right, 1)
        # same cancelled variance-decrease expression as the exact kernel, so
        # the two kernels stay bit-identical where binning is lossless
        return (
            left_sum**2 / safe_left + right_sum**2 / safe_right - total_sum**2 / m
        ) / m


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """CART classification tree minimising Gini impurity."""

    def fit(self, X, y, sample_indices: np.ndarray | None = None) -> "DecisionTreeClassifier":
        """Grow the tree on the training data.

        See :meth:`DecisionTreeRegressor.fit` for the accepted ``X`` kinds and
        ``sample_indices`` semantics.  Classes are taken from the sampled rows
        only, matching a fit on the materialised bootstrap sample.
        """
        X, y = check_fit_inputs(X, y)
        y_seen = y if sample_indices is None else y[np.asarray(sample_indices)]
        self.classes_ = np.unique(y_seen)
        self._class_index = {cls: i for i, cls in enumerate(self.classes_)}
        # rows outside the sample may get the out-of-range code len(classes_);
        # construction never visits them, so the codes are harmless
        codes = np.searchsorted(self.classes_, y)
        self._fit_tree(X, codes.astype(np.float64), sample_indices)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates (leaf class frequencies)."""
        return self._predict_values(X)

    def predict(self, X) -> np.ndarray:
        """Predict the majority class of the leaf each row falls into."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """See :meth:`_BaseDecisionTree.to_state`; adds the class vector."""
        doc, arrays = super().to_state()
        arrays["classes"] = np.asarray(self.classes_, dtype=np.float64)
        return doc, arrays

    def _restore_state(self, doc: dict, arrays: dict[str, np.ndarray]) -> None:
        super()._restore_state(doc, arrays)
        self.classes_ = np.asarray(arrays["classes"], dtype=np.float64)
        self._class_index = {cls: i for i, cls in enumerate(self.classes_)}

    def _node_value(self, codes: np.ndarray) -> np.ndarray:
        counts = np.bincount(codes.astype(np.int64), minlength=len(self.classes_))
        return counts / max(counts.sum(), 1)

    def _node_impurity(self, codes: np.ndarray) -> float:
        probabilities = self._node_value(codes)
        return float(1.0 - np.sum(probabilities**2))

    def _best_split_for_feature(self, values, codes) -> tuple[float, float]:
        order = np.argsort(values, kind="stable")
        v = values[order]
        c = codes[order].astype(np.int64)
        n = len(c)
        if n < 2:
            return -np.inf, 0.0
        boundaries = np.nonzero(np.diff(v) > 0)[0]
        if len(boundaries) == 0:
            return -np.inf, 0.0
        n_classes = len(self.classes_)
        one_hot = np.zeros((n, n_classes), dtype=np.float64)
        one_hot[np.arange(n), c] = 1.0
        cum_counts = np.cumsum(one_hot, axis=0)
        total_counts = cum_counts[-1]
        left_counts = cum_counts[boundaries]
        right_counts = total_counts - left_counts
        n_left = (boundaries + 1).astype(np.float64)
        n_right = n - n_left
        gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
        gini_parent = 1.0 - np.sum((total_counts / n) ** 2)
        gains = gini_parent - (n_left / n) * gini_left - (n_right / n) * gini_right
        best = int(np.argmax(gains))
        if gains[best] <= 0:
            return -np.inf, 0.0
        boundary = boundaries[best]
        threshold = (v[boundary] + v[boundary + 1]) / 2.0
        return float(gains[best]), float(threshold)

    def _hist_gains(self, flat, y, cum_n, k, n_bins, m, valid) -> np.ndarray:
        n_classes = len(self.classes_)
        class_codes = np.repeat(y.astype(np.int64), k)
        joint = np.bincount(
            flat * n_classes + class_codes,
            minlength=k * n_bins * n_classes,
        ).reshape(k, n_bins, n_classes)
        cum_counts = np.cumsum(joint.astype(np.float64), axis=1)
        total_counts = cum_counts[:, -1, :]  # (k, n_classes)
        left_counts = cum_counts[:, :-1, :]  # (k, n_bins - 1, n_classes)
        right_counts = total_counts[:, None, :] - left_counts
        n_left = cum_n[:, :-1].astype(np.float64)
        n_right = m - n_left
        safe_left = np.where(valid, n_left, 1.0)
        safe_right = np.where(valid, n_right, 1.0)
        gini_left = 1.0 - np.sum((left_counts / safe_left[..., None]) ** 2, axis=2)
        gini_right = 1.0 - np.sum((right_counts / safe_right[..., None]) ** 2, axis=2)
        gini_parent = 1.0 - np.sum((total_counts / m) ** 2, axis=1)
        return gini_parent[:, None] - (n_left / m) * gini_left - (n_right / m) * gini_right
