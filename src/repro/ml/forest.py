"""Random forests built from bagged CART trees.

Random forests serve two roles in ARDA: they are the default final estimator
used to measure augmentation quality, and (via impurity-based feature
importances) one half of the RIFS ranking ensemble.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest(BaseEstimator):
    """Shared bagging machinery for forest classifiers and regressors."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int | None = 10,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list = []
        self.feature_importances_: np.ndarray | None = None

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.estimators_ = []
        importances = np.zeros(X.shape[1], dtype=np.float64)
        for i in range(self.n_estimators):
            tree = self._make_tree(int(rng.integers(0, 2**31 - 1)))
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree.fit(X[sample], y[sample])
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        if total > 0:
            self.feature_importances_ = importances / total
        else:
            self.feature_importances_ = np.zeros(X.shape[1], dtype=np.float64)


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Bagged ensemble of CART regression trees (prediction = mean of trees)."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X, y) -> "RandomForestRegressor":
        """Fit the forest on training data."""
        X, y = check_X_y(X, y)
        self._fit_forest(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Average the predictions of all trees."""
        X = check_array(X)
        if not self.estimators_:
            raise RuntimeError("forest must be fitted before prediction")
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Bagged ensemble of CART classification trees (soft voting)."""

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit the forest on training data."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        return self

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def predict_proba(self, X) -> np.ndarray:
        """Average the class-probability estimates of all trees.

        Columns correspond to ``self.classes_``; trees that never saw a class
        contribute zero probability for it.
        """
        X = check_array(X)
        if not self.estimators_:
            raise RuntimeError("forest must be fitted before prediction")
        n_classes = len(self.classes_)
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        total = np.zeros((X.shape[0], n_classes), dtype=np.float64)
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            for j, cls in enumerate(tree.classes_):
                total[:, class_index[cls]] += probabilities[:, j]
        total /= len(self.estimators_)
        return total

    def predict(self, X) -> np.ndarray:
        """Predict the class with the highest averaged probability."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
