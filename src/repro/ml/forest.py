"""Random forests built from bagged CART trees.

Random forests serve two roles in ARDA: they are the default final estimator
used to measure augmentation quality, and (via impurity-based feature
importances) one half of the RIFS ranking ensemble.

The forest quantises the training matrix **once** (``tree_method="hist"``) and
every tree trains on the shared :class:`~repro.ml.binning.BinnedMatrix`;
bootstrap resamples are index draws into it, never matrix copies.  Tree fits
are independent, so they fan out over the same pluggable
:class:`~repro.core.executor.JoinExecutor` pools the join engine uses.  All
per-tree randomness (seed and bootstrap sample) is drawn up front from the
forest RNG in tree order — interleaved exactly like the historical serial
loop — so serial, thread and process execution produce byte-identical
forests.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import JoinExecutor, make_executor
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_fit_inputs,
)
from repro.ml.binning import DEFAULT_MAX_BINS, BinnedMatrix, resolve_tree_method
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def _fit_forest_tree(shared, task):
    """Fit one (tree, sample) task against the shared ``(data, y)`` payload.

    Top-level so process pools can pickle it; the training data travels via
    the executor's shared-payload channel (once per worker), never per tree.
    """
    data, y = shared
    tree, sample = task
    tree.fit(data, y, sample_indices=sample)
    return tree


class _BaseForest(BaseEstimator):
    """Shared bagging machinery for forest classifiers and regressors."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int | None = 10,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: int | None = 0,
        tree_method: str | None = None,
        max_bins: int = DEFAULT_MAX_BINS,
        n_jobs: int | None = 1,
        executor: str | JoinExecutor = "thread",
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.n_jobs = n_jobs
        self.executor = executor
        self.estimators_: list = []
        self.feature_importances_: np.ndarray | None = None

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def _fit_forest(self, X, y: np.ndarray) -> None:
        if isinstance(X, BinnedMatrix):
            if resolve_tree_method(self.tree_method) == "exact":
                raise ValueError(
                    "the exact kernel cannot train on a BinnedMatrix; "
                    "pass the float matrix instead"
                )
            data = X
        elif resolve_tree_method(self.tree_method) == "hist":
            data = BinnedMatrix.from_matrix(X, max_bins=self.max_bins)
        else:
            data = X
        rng = np.random.default_rng(self.random_state)
        n, n_features = X.shape
        # per-tree randomness drawn up front, interleaved exactly like the
        # historical serial loop, so executor choice can't change the forest
        tasks = []
        for _ in range(self.n_estimators):
            tree = self._make_tree(int(rng.integers(0, 2**31 - 1)))
            sample = rng.integers(0, n, size=n) if self.bootstrap else None
            tasks.append((tree, sample))
        executor = make_executor(self.executor, self.n_jobs)
        try:
            self.estimators_ = executor.map_with_shared(_fit_forest_tree, (data, y), tasks)
        finally:
            executor.shutdown()
        importances = np.zeros(n_features, dtype=np.float64)
        for tree in self.estimators_:
            importances += tree.feature_importances_
        total = importances.sum()
        if total > 0:
            self.feature_importances_ = importances / total
        else:
            self.feature_importances_ = np.zeros(n_features, dtype=np.float64)


    # persistence ----------------------------------------------------------------

    _PARAM_NAMES = (
        "n_estimators",
        "max_depth",
        "min_samples_split",
        "min_samples_leaf",
        "max_features",
        "bootstrap",
        "random_state",
        "tree_method",
        "max_bins",
        "n_jobs",
    )

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """The fitted forest as ``(plain doc, named arrays)``.

        Per-tree arrays are namespaced ``tree<i>/<name>`` so the whole forest
        flattens into one page dictionary for
        :mod:`repro.serving.artifact`.  The executor backend is stored by
        *name* (a live pool is process state, not model state); a restored
        forest predicts bit-identically but refits on whatever executor it is
        configured with.
        """
        if not self.estimators_:
            raise RuntimeError("cannot serialise an unfitted forest")
        executor = self.executor if isinstance(self.executor, str) else self.executor.name
        doc = {
            "params": {name: getattr(self, name) for name in self._PARAM_NAMES},
            "executor": executor,
            "trees": [],
        }
        arrays: dict[str, np.ndarray] = {
            "importances": np.asarray(self.feature_importances_, dtype=np.float64)
        }
        for i, tree in enumerate(self.estimators_):
            tree_doc, tree_arrays = tree.to_state()
            doc["trees"].append(tree_doc)
            for key, value in tree_arrays.items():
                arrays[f"tree{i}/{key}"] = value
        return doc, arrays

    def _restore_state(self, doc: dict, arrays: dict[str, np.ndarray]) -> None:
        params = doc["params"]
        for name in self._PARAM_NAMES:
            if name in params:
                setattr(self, name, params[name])
        self.executor = doc.get("executor", "thread")
        tree_cls = type(self._make_tree(0))
        self.estimators_ = []
        for i, tree_doc in enumerate(doc["trees"]):
            prefix = f"tree{i}/"
            tree_arrays = {
                key[len(prefix):]: value
                for key, value in arrays.items()
                if key.startswith(prefix)
            }
            self.estimators_.append(tree_cls.from_state(tree_doc, tree_arrays))
        self.feature_importances_ = np.asarray(arrays["importances"], dtype=np.float64)

    @classmethod
    def from_state(cls, doc: dict, arrays: dict[str, np.ndarray]):
        """Rebuild a fitted forest written by :meth:`to_state`."""
        forest = cls()
        forest._restore_state(doc, arrays)
        return forest


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Bagged ensemble of CART regression trees (prediction = mean of trees)."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
            tree_method=self.tree_method,
            max_bins=self.max_bins,
        )

    def fit(self, X, y) -> "RandomForestRegressor":
        """Fit the forest on training data (a float matrix or a BinnedMatrix)."""
        X, y = check_fit_inputs(X, y)
        self._fit_forest(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        """Average the predictions of all trees.

        Accumulates tree-by-tree (like the classifier's soft vote) instead of
        ``stack().mean(axis=0)``: numpy's pairwise reduction blocks differently
        for different batch widths, so the stacked mean could round a row's
        prediction differently depending on how many rows it was scored with.
        Sequential accumulation gives every row the same addition order at any
        batch size — a micro-batching server must return bit-identical
        predictions however requests get coalesced.
        """
        X = check_array(X)
        if not self.estimators_:
            raise RuntimeError("forest must be fitted before prediction")
        total = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.estimators_:
            total += tree.predict(X)
        return total / len(self.estimators_)


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Bagged ensemble of CART classification trees (soft voting)."""

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit the forest on training data (a float matrix or a BinnedMatrix)."""
        X, y = check_fit_inputs(X, y)
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        return self

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
            tree_method=self.tree_method,
            max_bins=self.max_bins,
        )

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """See :meth:`_BaseForest.to_state`; adds the forest-level class vector."""
        doc, arrays = super().to_state()
        arrays["classes"] = np.asarray(self.classes_, dtype=np.float64)
        return doc, arrays

    def _restore_state(self, doc: dict, arrays: dict[str, np.ndarray]) -> None:
        super()._restore_state(doc, arrays)
        self.classes_ = np.asarray(arrays["classes"], dtype=np.float64)

    def predict_proba(self, X) -> np.ndarray:
        """Average the class-probability estimates of all trees.

        Columns correspond to ``self.classes_``; trees that never saw a class
        contribute zero probability for it.
        """
        X = check_array(X)
        if not self.estimators_:
            raise RuntimeError("forest must be fitted before prediction")
        n_classes = len(self.classes_)
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        total = np.zeros((X.shape[0], n_classes), dtype=np.float64)
        for tree in self.estimators_:
            probabilities = tree.predict_proba(X)
            for j, cls in enumerate(tree.classes_):
                total[:, class_index[cls]] += probabilities[:, j]
        total /= len(self.estimators_)
        return total

    def predict(self, X) -> np.ndarray:
        """Predict the class with the highest averaged probability."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
