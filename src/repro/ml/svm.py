"""Support vector machines: a primal linear SVC and an RBF-kernel SVC.

The linear SVC minimises the L2-regularised squared hinge loss with L-BFGS and
exposes ``coef_`` for feature ranking ("linear svc" selector in the paper).
The kernel SVC uses the least-squares SVM formulation (a single linear solve
per one-vs-rest problem); the paper only uses the RBF SVM as an alternative
final estimator for classification tasks, for which LS-SVM is an adequate,
dependency-free stand-in.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, ClassifierMixin, check_array, check_X_y


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear SVM with squared hinge loss, one-vs-rest for multi-class."""

    def __init__(self, C: float = 1.0, max_iter: int = 200, fit_intercept: bool = True):
        self.C = C
        self.max_iter = max_iter
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LinearSVC":
        """Fit one binary squared-hinge classifier per class (one-vs-rest)."""
        X, y = check_X_y(X, y)
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        Xs = (X - mean) / scale

        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("LinearSVC needs at least two classes")
        rows = []
        biases = []
        targets = self.classes_ if len(self.classes_) > 2 else self.classes_[1:]
        for cls in targets:
            signs = np.where(y == cls, 1.0, -1.0)
            weights, bias = self._fit_binary(Xs, signs)
            rows.append(weights)
            biases.append(bias)
        weights = np.vstack(rows)
        self.coef_ = weights / scale
        self.intercept_ = np.array(biases) - self.coef_ @ mean
        return self

    def _fit_binary(self, X: np.ndarray, signs: np.ndarray) -> tuple[np.ndarray, float]:
        n, d = X.shape
        reg = 1.0 / (self.C * n)

        def objective(theta):
            weights = theta[:d]
            bias = theta[d] if self.fit_intercept else 0.0
            margins = signs * (X @ weights + bias)
            slack = np.maximum(0.0, 1.0 - margins)
            loss = np.mean(slack**2) + 0.5 * reg * weights @ weights
            grad_margin = -2.0 * slack * signs / n
            grad_weights = X.T @ grad_margin + reg * weights
            if self.fit_intercept:
                grad = np.concatenate([grad_weights, [grad_margin.sum()]])
            else:
                grad = grad_weights
            return loss, grad

        size = d + (1 if self.fit_intercept else 0)
        result = optimize.minimize(
            objective,
            np.zeros(size),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        weights = result.x[:d]
        bias = float(result.x[d]) if self.fit_intercept else 0.0
        return weights, bias

    def decision_function(self, X) -> np.ndarray:
        """Signed distances to each one-vs-rest hyperplane."""
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before prediction")
        scores = check_array(X) @ self.coef_.T + self.intercept_
        return scores

    def predict(self, X) -> np.ndarray:
        """Predict the class with the largest decision value."""
        scores = self.decision_function(X)
        if scores.shape[1] == 1:
            return np.where(scores[:, 0] >= 0, self.classes_[1], self.classes_[0])
        return self.classes_[np.argmax(scores, axis=1)]


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """RBF (Gaussian) kernel matrix K[i, j] = exp(-gamma * ||a_i - b_j||^2)."""
    a_sq = np.sum(A**2, axis=1)[:, None]
    b_sq = np.sum(B**2, axis=1)[None, :]
    distances = a_sq + b_sq - 2.0 * (A @ B.T)
    np.maximum(distances, 0.0, out=distances)
    return np.exp(-gamma * distances)


class KernelSVC(BaseEstimator, ClassifierMixin):
    """RBF-kernel classifier using the least-squares SVM formulation.

    Each one-vs-rest problem solves ``(K + I / C) alpha = t`` with targets
    ``t in {-1, +1}``; prediction picks the class with the largest kernel
    expansion value.  ``gamma='scale'`` mirrors the common 1 / (d * Var[X])
    heuristic.
    """

    def __init__(self, C: float = 1.0, gamma="scale"):
        self.C = C
        self.gamma = gamma
        self.classes_: np.ndarray | None = None
        self._X_train: np.ndarray | None = None
        self._alphas: np.ndarray | None = None
        self._biases: np.ndarray | None = None
        self._gamma_value: float = 1.0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            variance = X.var()
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        return float(self.gamma)

    def fit(self, X, y) -> "KernelSVC":
        """Solve one regularised kernel system per class."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("KernelSVC needs at least two classes")
        self._X_train = X
        self._gamma_value = self._resolve_gamma(X)
        K = rbf_kernel(X, X, self._gamma_value)
        n = X.shape[0]
        system = K + np.eye(n) / self.C
        alphas = []
        biases = []
        for cls in self.classes_:
            targets = np.where(y == cls, 1.0, -1.0)
            alpha = np.linalg.solve(system, targets - targets.mean())
            alphas.append(alpha)
            biases.append(float(targets.mean()))
        self._alphas = np.vstack(alphas)
        self._biases = np.array(biases)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Kernel expansion scores for each class."""
        if self._X_train is None:
            raise RuntimeError("model must be fitted before prediction")
        K = rbf_kernel(check_array(X), self._X_train, self._gamma_value)
        return K @ self._alphas.T + self._biases

    def predict(self, X) -> np.ndarray:
        """Predict the class with the largest kernel score."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
