"""Linear regression models: OLS, ridge, lasso and elastic net.

Lasso and elastic net are fitted by cyclic coordinate descent on standardised
features; the absolute values of their coefficients double as feature-ranking
scores in the selection package.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, RegressorMixin, check_array, check_X_y


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares via numpy's least-squares solver."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        """Fit OLS coefficients."""
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            design = np.column_stack([np.ones(X.shape[0]), X])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the fitted linear model."""
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before prediction")
        return check_array(X) @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """L2-regularised linear regression with a closed-form solution."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "Ridge":
        """Solve (X^T X + alpha I) w = X^T y on centred data."""
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), float(y.mean())
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        d = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the fitted linear model."""
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before prediction")
        return check_array(X) @ self.coef_ + self.intercept_


def _soft_threshold(value: float, threshold: float) -> float:
    """Soft-thresholding operator used by coordinate descent."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


class ElasticNet(BaseEstimator, RegressorMixin):
    """Linear regression with combined L1/L2 penalty (coordinate descent).

    Minimises ``1/(2n) ||y - Xw||^2 + alpha * l1_ratio * ||w||_1
    + alpha * (1 - l1_ratio)/2 * ||w||_2^2`` on internally standardised
    features; coefficients are reported on the original feature scale.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        l1_ratio: float = 0.5,
        max_iter: int = 300,
        tol: float = 1e-5,
        fit_intercept: bool = True,
    ):
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "ElasticNet":
        """Run cyclic coordinate descent until the coefficients stabilise."""
        X, y = check_X_y(X, y)
        n, d = X.shape
        x_mean = X.mean(axis=0) if self.fit_intercept else np.zeros(d)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0.0] = 1.0
        y_mean = float(y.mean()) if self.fit_intercept else 0.0
        Xs = (X - x_mean) / x_scale
        yc = y - y_mean

        w = np.zeros(d)
        residual = yc.copy()
        l1 = self.alpha * self.l1_ratio
        l2 = self.alpha * (1.0 - self.l1_ratio)
        column_norms = (Xs**2).sum(axis=0) / n
        for iteration in range(self.max_iter):
            max_delta = 0.0
            for j in range(d):
                if column_norms[j] == 0.0:
                    continue
                old = w[j]
                rho = (Xs[:, j] @ residual) / n + column_norms[j] * old
                new = _soft_threshold(rho, l1) / (column_norms[j] + l2)
                if new != old:
                    residual += Xs[:, j] * (old - new)
                    w[j] = new
                    max_delta = max(max_delta, abs(new - old))
            self.n_iter_ = iteration + 1
            if max_delta < self.tol:
                break
        self.coef_ = w / x_scale
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the fitted linear model."""
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before prediction")
        return check_array(X) @ self.coef_ + self.intercept_


class Lasso(ElasticNet):
    """L1-regularised linear regression (elastic net with ``l1_ratio=1``)."""

    def __init__(
        self,
        alpha: float = 1.0,
        max_iter: int = 300,
        tol: float = 1e-5,
        fit_intercept: bool = True,
    ):
        super().__init__(
            alpha=alpha,
            l1_ratio=1.0,
            max_iter=max_iter,
            tol=tol,
            fit_intercept=fit_intercept,
        )
