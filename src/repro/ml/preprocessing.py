"""Feature scaling and label encoding transformers."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array
from repro.relational.column import Column
from repro.relational.schema import CATEGORICAL


class StandardScaler(BaseEstimator):
    """Standardise features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y=None) -> "StandardScaler":
        """Learn per-feature mean and standard deviation."""
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = check_array(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray, y=None) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        if self.mean_ is None:
            raise RuntimeError("StandardScaler must be fitted before inverse_transform")
        return check_array(X) * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features to the [0, 1] range."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y=None) -> "MinMaxScaler":
        """Learn per-feature minimum and range."""
        X = check_array(X)
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        value_range[value_range == 0.0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.min_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        return (check_array(X) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray, y=None) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(X, y).transform(X)


class LabelEncoder(BaseEstimator):
    """Encode arbitrary labels as integer class codes 0..K-1.

    Accepts plain arrays/sequences or a categorical :class:`Column`, in which
    case fitting reads the (tiny) dictionary and transforming is one integer
    gather over the stored codes — the row strings are never materialised.
    """

    def __init__(self):
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        """Learn the sorted set of distinct labels."""
        if isinstance(y, Column) and y.ctype is CATEGORICAL:
            self.classes_ = np.array(sorted(y.unique()), dtype=object)
            return self
        self.classes_ = np.unique(np.asarray(y).ravel())
        return self

    def transform(self, y) -> np.ndarray:
        """Map labels to their class codes."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before transform")
        if isinstance(y, Column) and y.ctype is CATEGORICAL:
            return self._transform_codes(y)
        y = np.asarray(y).ravel()
        if y.dtype.kind in "fiub" and self.classes_.dtype.kind in "fiub":
            # numeric labels: binary-search instead of a per-value dict lookup
            if len(y) and not len(self.classes_):
                raise ValueError(f"unseen label {y[0]!r}")
            positions = np.searchsorted(self.classes_, y)
            clipped = np.minimum(positions, len(self.classes_) - 1)
            unseen = (positions >= len(self.classes_)) | (self.classes_[clipped] != y)
            if unseen.any():
                raise ValueError(f"unseen label {y[np.argmax(unseen)]!r}")
            return clipped.astype(np.int64)
        index = {cls: i for i, cls in enumerate(self.classes_)}
        try:
            return np.array([index[v] for v in y], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def _transform_codes(self, column: Column) -> np.ndarray:
        """Translate a categorical column's dictionary codes into class codes."""
        index = {cls: i for i, cls in enumerate(self.classes_)}
        translate = np.full(len(column.dictionary) + 1, -1, dtype=np.int64)
        for code, text in enumerate(column.dictionary):
            translate[code] = index.get(text, -1)
        out = translate[column.codes]
        if (out < 0).any():
            bad = int(np.argmax(out < 0))
            raise ValueError(f"unseen label {column.value_at(bad)!r}")
        return out

    def fit_transform(self, y) -> np.ndarray:
        """Fit and transform in one step."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        """Map class codes back to labels."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        codes = np.asarray(codes, dtype=np.int64).ravel()
        return self.classes_[codes]
