"""Data splitting and cross-validation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ml.base import clone, is_classifier


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state: int | None = None,
    stratify: np.ndarray | None = None,
) -> list:
    """Split arrays into random train and test subsets.

    With ``stratify`` given, the class proportions of that vector are preserved
    in both splits (each class contributes at least one test row when it has
    two or more members).
    """
    if not arrays:
        raise ValueError("at least one array is required")
    n = len(np.asarray(arrays[0]))
    for arr in arrays:
        if len(np.asarray(arr)) != n:
            raise ValueError("all arrays must have the same length")
    rng = np.random.default_rng(random_state)
    if stratify is not None:
        stratify = np.asarray(stratify).ravel()
        test_mask = np.zeros(n, dtype=bool)
        for cls in np.unique(stratify):
            members = np.nonzero(stratify == cls)[0]
            rng.shuffle(members)
            n_test = int(round(len(members) * test_size))
            if len(members) >= 2:
                n_test = min(max(n_test, 1), len(members) - 1)
            test_mask[members[:n_test]] = True
        test_idx = np.nonzero(test_mask)[0]
        train_idx = np.nonzero(~test_mask)[0]
    else:
        order = rng.permutation(n)
        n_test = max(int(round(n * test_size)), 1)
        test_idx, train_idx = order[:n_test], order[n_test:]
    result = []
    for arr in arrays:
        arr = np.asarray(arr)
        result.append(arr[train_idx])
        result.append(arr[test_idx])
    return result


class KFold:
    """K-fold cross-validation splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        n = len(np.asarray(X))
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test_idx = folds[i]
            train_idx = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train_idx, test_idx


class StratifiedKFold:
    """K-fold splitter that preserves class proportions in every fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs stratified by ``y``."""
        y = np.asarray(y).ravel()
        n = len(y)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.zeros(n, dtype=np.int64)
        for cls in np.unique(y):
            members = np.nonzero(y == cls)[0]
            if self.shuffle:
                rng.shuffle(members)
            for position, index in enumerate(members):
                fold_of[index] = position % self.n_splits
        for fold in range(self.n_splits):
            test_idx = np.nonzero(fold_of == fold)[0]
            train_idx = np.nonzero(fold_of != fold)[0]
            yield train_idx, test_idx


def cross_val_score(
    estimator,
    X,
    y,
    cv: int = 5,
    scoring=None,
    random_state: int | None = 0,
) -> np.ndarray:
    """Fit/score an estimator over cross-validation folds.

    ``scoring`` is a ``(y_true, y_pred) -> float`` callable; when omitted the
    estimator's own ``score`` method is used (accuracy for classifiers, R^2 for
    regressors).  Classifiers get stratified folds.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if is_classifier(estimator):
        splitter = StratifiedKFold(n_splits=cv, random_state=random_state)
    else:
        splitter = KFold(n_splits=cv, random_state=random_state)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        if len(test_idx) == 0 or len(train_idx) == 0:
            continue
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        if scoring is None:
            scores.append(model.score(X[test_idx], y[test_idx]))
        else:
            scores.append(scoring(y[test_idx], model.predict(X[test_idx])))
    return np.array(scores, dtype=np.float64)
