"""Joint L2,1-norm sparse regression (Equation 1 of the paper).

The objective is ``min_W ||X W - Y||_{2,1} + gamma ||W||_{2,1}`` where the
L2,1 norm sums the Euclidean norms of the rows.  Because the row-norm penalty
couples all outputs, rows of W (one per input feature) are driven to zero
jointly, producing a feature ranking given by the surviving row norms — this is
the "Sparse Regression" half of the RIFS ranking ensemble.

The solver is the iteratively-reweighted least-squares scheme of Nie et al.
(NIPS 2010, "Efficient and Robust Feature Selection via Joint L2,1-Norms
Minimization"), which the gradient solver cited by the paper (Qian & Zhai 2013)
builds on: each iteration solves a diagonally-reweighted ridge system, and the
objective is non-increasing.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array


def l21_norm(matrix: np.ndarray, eps: float = 0.0) -> float:
    """Sum of the Euclidean norms of the rows of a matrix."""
    matrix = np.atleast_2d(matrix)
    return float(np.sum(np.sqrt(np.sum(matrix**2, axis=1) + eps)))


class SparseRegression(BaseEstimator):
    """L2,1-regularised multi-output linear model with joint row sparsity.

    For regression targets ``Y`` is the target column; for classification
    targets ``Y`` is the one-hot label matrix (the "corrupted labels" variant
    of the paper simply re-fits ``Y`` as part of the objective, which is
    approximated here by fitting on the one-hot labels directly).
    ``feature_scores_`` holds the row norms of the learned weight matrix.
    """

    def __init__(
        self,
        gamma: float = 1.0,
        max_iter: int = 50,
        tol: float = 1e-5,
        eps: float = 1e-8,
    ):
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self.eps = eps
        self.coef_: np.ndarray | None = None
        self.feature_scores_: np.ndarray | None = None
        self.objective_history_: list[float] = []
        self.n_iter_: int = 0

    def fit(self, X, y) -> "SparseRegression":
        """Fit the weight matrix by iteratively-reweighted least squares."""
        X = check_array(X)
        Y = self._as_target_matrix(X, y)
        n, d = X.shape

        # standardise features so the penalty treats them comparably
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        Xs = (X - mean) / scale

        W = np.zeros((d, Y.shape[1]))
        d_feature = np.ones(d)
        d_residual = np.ones(n)
        self.objective_history_ = []
        previous = np.inf
        for iteration in range(self.max_iter):
            # weighted ridge solve:  (X^T D_r X + gamma D_f) W = X^T D_r Y
            XtDr = Xs.T * d_residual
            gram = XtDr @ Xs + self.gamma * np.diag(d_feature)
            gram += self.eps * np.eye(d)
            W = np.linalg.solve(gram, XtDr @ Y)

            residual = Xs @ W - Y
            residual_norms = np.sqrt(np.sum(residual**2, axis=1) + self.eps)
            feature_norms = np.sqrt(np.sum(W**2, axis=1) + self.eps)
            d_residual = 1.0 / (2.0 * residual_norms)
            d_feature = 1.0 / (2.0 * feature_norms)

            objective = float(residual_norms.sum() + self.gamma * feature_norms.sum())
            self.objective_history_.append(objective)
            self.n_iter_ = iteration + 1
            if abs(previous - objective) < self.tol * max(abs(previous), 1.0):
                break
            previous = objective

        self.coef_ = W / scale[:, None]
        self.feature_scores_ = np.sqrt(np.sum(W**2, axis=1))
        self._mean = mean
        self._scale = scale
        self._W_std = W
        self._y_mean = Y.mean(axis=0)
        return self

    def _as_target_matrix(self, X: np.ndarray, y) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y have inconsistent numbers of rows")
        return y - y.mean(axis=0)

    def predict(self, X) -> np.ndarray:
        """Linear prediction (single-output targets return a 1-D array)."""
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before prediction")
        Xs = (check_array(X) - self._mean) / self._scale
        predictions = Xs @ self._W_std + self._y_mean
        if predictions.shape[1] == 1:
            return predictions[:, 0]
        return predictions

    def ranking(self) -> np.ndarray:
        """Feature indices ordered from most to least important."""
        if self.feature_scores_ is None:
            raise RuntimeError("model must be fitted before ranking")
        return np.argsort(-self.feature_scores_, kind="stable")


def one_hot_labels(y: np.ndarray) -> np.ndarray:
    """One-hot encode class labels for use as the SparseRegression target."""
    y = np.asarray(y).ravel()
    classes = np.unique(y)
    one_hot = np.zeros((len(y), len(classes)), dtype=np.float64)
    for i, cls in enumerate(classes):
        one_hot[y == cls, i] = 1.0
    return one_hot
