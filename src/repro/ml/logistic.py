"""Logistic regression (binary and multinomial) via L-BFGS."""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, ClassifierMixin, check_array, check_X_y


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression with L2 regularisation.

    The coefficient matrix has one row per class; the per-feature maximum of
    ``|coef_|`` is used by the selection package as a ranking score, matching
    how the paper's "logistic reg" selector operates.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200, fit_intercept: bool = True):
        self.C = C
        self.max_iter = max_iter
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "LogisticRegression":
        """Maximise the L2-penalised multinomial log-likelihood."""
        X, y = check_X_y(X, y)
        # standardise internally for optimisation stability
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        Xs = (X - mean) / scale

        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("LogisticRegression needs at least two classes")
        codes = np.searchsorted(self.classes_, y)
        n, d = Xs.shape
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), codes] = 1.0
        reg = 1.0 / (self.C * n)

        def pack_shape(theta):
            weights = theta[: n_classes * d].reshape(n_classes, d)
            bias = theta[n_classes * d:] if self.fit_intercept else np.zeros(n_classes)
            return weights, bias

        def objective(theta):
            weights, bias = pack_shape(theta)
            logits = Xs @ weights.T + bias
            probabilities = _softmax(logits)
            probabilities = np.clip(probabilities, 1e-12, 1.0)
            loss = -np.sum(one_hot * np.log(probabilities)) / n
            loss += 0.5 * reg * np.sum(weights**2)
            grad_logits = (probabilities - one_hot) / n
            grad_weights = grad_logits.T @ Xs + reg * weights
            if self.fit_intercept:
                grad_bias = grad_logits.sum(axis=0)
                grad = np.concatenate([grad_weights.ravel(), grad_bias])
            else:
                grad = grad_weights.ravel()
            return loss, grad

        size = n_classes * d + (n_classes if self.fit_intercept else 0)
        result = optimize.minimize(
            objective,
            np.zeros(size),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        weights, bias = pack_shape(result.x)
        # undo the internal standardisation
        self.coef_ = weights / scale
        self.intercept_ = bias - self.coef_ @ mean
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw class scores (log-odds up to a constant)."""
        if self.coef_ is None:
            raise RuntimeError("model must be fitted before prediction")
        return check_array(X) @ self.coef_.T + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability estimates via softmax."""
        return _softmax(self.decision_function(X))

    def predict(self, X) -> np.ndarray:
        """Predict the most probable class."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
