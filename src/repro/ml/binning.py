"""Histogram binning: the shared quantised design-matrix of the training engine.

A :class:`BinnedMatrix` quantises every feature **once** into at most
``max_bins`` (≤ 255) ``uint8`` bin codes.  Downstream consumers — histogram
trees, forests, the RIFS injection rounds — compute on the codes directly, so
the O(n log n) per-feature sort is paid a single time per matrix instead of at
every node of every tree of every injection round.

Binning scheme
--------------

* A feature with at most ``max_bins`` distinct values gets one **singleton bin
  per distinct value** with cut points at the midpoints between adjacent
  values.  Binning is lossless in this regime: a histogram split search over
  the bins enumerates exactly the same candidate boundaries, with exactly the
  same left/right statistics, as the exact sorted-values search.
* A feature with more distinct values is cut at its empirical **quantiles**
  (``max_bins - 1`` interior cut points, deduplicated), so every bin holds
  roughly the same number of rows.

For every bin the smallest and largest *data* value assigned to it are
recorded (``bin_min`` / ``bin_max``).  A split "codes ≤ b" is translated back
into the float threshold ``(bin_max[b_lo] + bin_min[b_hi]) / 2`` between the
last non-empty bin on the left and the first non-empty bin on the right, which

* routes every *training* row exactly as the code comparison did, and
* degenerates to the exact tree's midpoint-between-adjacent-values threshold
  when bins are singletons — making hist and exact trees bit-identical on
  integer-valued (more generally: low-cardinality) features.

Codes are stored Fortran-ordered so the per-feature gathers of the node split
search touch contiguous memory.
"""

from __future__ import annotations

import os

import numpy as np

TREE_METHODS = ("exact", "hist")
DEFAULT_TREE_METHOD = "hist"
DEFAULT_MAX_BINS = 255


def resolve_tree_method(method: str | None = None) -> str:
    """Resolve a tree-method option to ``"exact"`` or ``"hist"``.

    ``None`` (and ``"auto"``) defer to the ``ARDA_TREE_METHOD`` environment
    variable, falling back to :data:`DEFAULT_TREE_METHOD`; the env var is what
    lets CI run the whole suite under either kernel without code changes.
    """
    if method is None or method == "auto":
        method = os.environ.get("ARDA_TREE_METHOD", "").strip().lower() or DEFAULT_TREE_METHOD
    if method not in TREE_METHODS:
        raise ValueError(f"tree_method must be one of {TREE_METHODS}, got {method!r}")
    return method


def check_max_bins(max_bins: int) -> int:
    """Validate a ``max_bins`` option (codes must fit uint8)."""
    max_bins = int(max_bins)
    if not 2 <= max_bins <= 255:
        raise ValueError(f"max_bins must be in [2, 255], got {max_bins}")
    return max_bins


def _sanitise(values: np.ndarray) -> np.ndarray:
    """Map non-finite entries to 0.0, matching the float design matrix."""
    return np.nan_to_num(
        np.asarray(values, dtype=np.float64), nan=0.0, posinf=0.0, neginf=0.0
    )


def _cuts_from(distinct: np.ndarray, values: np.ndarray, max_bins: int) -> np.ndarray:
    """Cut points for one feature: singleton midpoints or empirical quantiles."""
    if len(distinct) <= max_bins:
        return (distinct[:-1] + distinct[1:]) / 2.0
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    return np.unique(np.quantile(values, quantiles))


def bin_column(values: np.ndarray, max_bins: int = DEFAULT_MAX_BINS):
    """Quantise one float feature into ``(codes, bin_min, bin_max)``.

    Non-finite entries are mapped to 0.0 first, matching what
    :func:`repro.relational.encoding.encode_features` does to the float design
    matrix, so binning a matrix and binning its columns agree.
    """
    values = _sanitise(values)
    distinct = np.unique(values)
    if len(distinct) == 0:  # zero rows: one empty bin so downstream shapes hold
        nan = np.array([np.nan])
        return np.zeros(0, dtype=np.uint8), nan, nan
    cuts = _cuts_from(distinct, values, max_bins)
    codes = np.searchsorted(cuts, values, side="left").astype(np.uint8)
    bin_min, bin_max = bin_value_ranges(distinct, cuts)
    return codes, bin_min, bin_max


def learn_bin_cuts(values: np.ndarray, max_bins: int = DEFAULT_MAX_BINS) -> np.ndarray:
    """Learn one feature's cut points without encoding anything.

    Separating cut learning from encoding is what makes out-of-core binning
    possible: cuts are learned once from a sample (or from everything, when it
    fits), then each chunk is encoded independently with
    :func:`apply_bin_cuts`.  ``learn_bin_cuts`` over the full feature followed
    by ``apply_bin_cuts`` reproduces :func:`bin_column`'s codes exactly.
    """
    values = _sanitise(values)
    distinct = np.unique(values)
    if len(distinct) == 0:
        return np.empty(0, dtype=np.float64)
    return _cuts_from(distinct, values, max_bins)


def apply_bin_cuts(values: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Encode one feature chunk against already-learned cut points."""
    values = _sanitise(values)
    return np.searchsorted(cuts, values, side="left").astype(np.uint8)


def bin_value_ranges(distinct: np.ndarray, cuts: np.ndarray):
    """Per-bin smallest/largest observed value (NaN for bins no value falls in)."""
    n_bins = len(cuts) + 1
    code_of_value = np.searchsorted(cuts, distinct, side="left")
    bin_min = np.full(n_bins, np.nan)
    bin_max = np.full(n_bins, np.nan)
    # distinct is sorted, so a reversed assignment leaves the first (smallest)
    # value of each bin in place and a forward assignment the last (largest)
    bin_min[code_of_value[::-1]] = distinct[::-1]
    bin_max[code_of_value] = distinct
    return bin_min, bin_max


class BinnedMatrix:
    """A design matrix quantised to per-feature uint8 bin codes.

    Immutable once built; safe to share across threads, trees and RIFS rounds.
    ``feature_names`` / ``source_columns`` mirror
    :class:`repro.relational.encoding.EncodedMatrix` when the matrix was built
    from a table, and are ``None`` for raw arrays.
    """

    __slots__ = ("codes", "bin_min", "bin_max", "n_bins", "max_bins", "feature_names", "source_columns")

    def __init__(
        self,
        codes: np.ndarray,
        bin_min: list[np.ndarray],
        bin_max: list[np.ndarray],
        max_bins: int = DEFAULT_MAX_BINS,
        feature_names: list[str] | None = None,
        source_columns: list[str] | None = None,
    ):
        if codes.dtype != np.uint8 or codes.ndim != 2:
            raise ValueError("codes must be a 2-dimensional uint8 array")
        if len(bin_min) != codes.shape[1] or len(bin_max) != codes.shape[1]:
            raise ValueError("bin metadata length does not match the feature count")
        self.codes = codes if codes.flags.f_contiguous else np.asfortranarray(codes)
        self.bin_min = list(bin_min)
        self.bin_max = list(bin_max)
        self.n_bins = np.array([len(b) for b in self.bin_min], dtype=np.int64)
        self.max_bins = check_max_bins(max_bins)
        self.feature_names = feature_names
        self.source_columns = source_columns

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_matrix(
        cls,
        X: np.ndarray,
        max_bins: int = DEFAULT_MAX_BINS,
        feature_names: list[str] | None = None,
        source_columns: list[str] | None = None,
    ) -> "BinnedMatrix":
        """Quantise a float design matrix column by column."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        max_bins = check_max_bins(max_bins)
        n, d = X.shape
        codes = np.empty((n, d), dtype=np.uint8, order="F")
        bin_min: list[np.ndarray] = []
        bin_max: list[np.ndarray] = []
        for j in range(d):
            column_codes, column_min, column_max = bin_column(X[:, j], max_bins)
            codes[:, j] = column_codes
            bin_min.append(column_min)
            bin_max.append(column_max)
        return cls(codes, bin_min, bin_max, max_bins, feature_names, source_columns)

    @classmethod
    def from_chunks(
        cls,
        chunks,
        max_bins: int = DEFAULT_MAX_BINS,
        sample_rows: int | None = 65_536,
        feature_names: list[str] | None = None,
        source_columns: list[str] | None = None,
    ) -> "BinnedMatrix":
        """Quantise a design matrix delivered as an iterable of row chunks.

        Cut points are learned from the first ``sample_rows`` rows (buffered,
        then released), after which every chunk — the buffered sample
        included — is encoded against the fixed cuts and only its ``uint8``
        codes are kept, so the float matrix never materialises whole.  Per-bin
        value ranges (``bin_min``/``bin_max``) are still exact over *all*
        rows, streamed with running min/max per bin.  With ``sample_rows=None``
        (or a sample covering every row) the result is identical to
        :meth:`from_matrix`; a smaller sample trades cut fidelity on
        high-cardinality features for bounded memory, which shifts bin
        boundaries but never row routing consistency (every chunk is encoded
        with the same cuts).
        """
        max_bins = check_max_bins(max_bins)
        iterator = iter(chunks)
        buffered: list[np.ndarray] = []
        buffered_rows = 0
        for chunk in iterator:
            X = np.asarray(chunk, dtype=np.float64)
            if X.ndim != 2:
                raise ValueError(f"chunks must be 2-dimensional, got shape {X.shape}")
            buffered.append(X)
            buffered_rows += X.shape[0]
            if sample_rows is not None and buffered_rows >= sample_rows:
                break
        if not buffered:
            raise ValueError("from_chunks requires at least one chunk")
        sample = np.vstack(buffered) if len(buffered) > 1 else buffered[0]
        d = sample.shape[1]
        cuts = [learn_bin_cuts(sample[:, j], max_bins) for j in range(d)]
        n_bins = [len(c) + 1 for c in cuts]
        running_min = [np.full(nb, np.inf) for nb in n_bins]
        running_max = [np.full(nb, -np.inf) for nb in n_bins]
        code_parts: list[np.ndarray] = []

        def encode(X: np.ndarray) -> None:
            part = np.empty(X.shape, dtype=np.uint8)
            for j in range(d):
                values = _sanitise(X[:, j])
                column_codes = np.searchsorted(cuts[j], values, side="left")
                part[:, j] = column_codes.astype(np.uint8)
                np.minimum.at(running_min[j], column_codes, values)
                np.maximum.at(running_max[j], column_codes, values)
            code_parts.append(part)

        encode(sample)
        buffered = []  # release the float sample before streaming the rest
        for chunk in iterator:
            X = np.asarray(chunk, dtype=np.float64)
            if X.ndim != 2 or X.shape[1] != d:
                raise ValueError(
                    f"chunk shape {X.shape} does not match {d} features"
                )
            encode(X)
        bin_min = [np.where(np.isfinite(m), m, np.nan) for m in running_min]
        bin_max = [np.where(np.isfinite(m), m, np.nan) for m in running_max]
        codes = (
            np.asfortranarray(np.vstack(code_parts))
            if len(code_parts) > 1
            else np.asfortranarray(code_parts[0])
        )
        return cls(codes, bin_min, bin_max, max_bins, feature_names, source_columns)

    # -- shape protocol --------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        """Number of (quantised) feature columns."""
        return self.codes.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_features)``."""
        return self.codes.shape

    def __len__(self) -> int:
        return self.codes.shape[0]

    # -- combinators -----------------------------------------------------------

    def split_threshold(self, feature: int, bin_lo: int, bin_hi: int) -> float:
        """Float threshold realising the split ``codes ≤ bin_lo``.

        ``bin_hi`` is the first non-empty bin to the right of ``bin_lo``; the
        returned value lies strictly between the largest value binned into
        ``bin_lo`` and the smallest value binned into ``bin_hi`` (up to float
        rounding), so ``value <= threshold`` reproduces the code comparison.
        """
        return float((self.bin_max[feature][bin_lo] + self.bin_min[feature][bin_hi]) / 2.0)

    def take_rows(self, indices: np.ndarray) -> "BinnedMatrix":
        """Row subset (bin metadata is shared, codes are gathered)."""
        return BinnedMatrix(
            np.asfortranarray(self.codes[np.asarray(indices)]),
            self.bin_min,
            self.bin_max,
            self.max_bins,
            self.feature_names,
            self.source_columns,
        )

    def hstack(self, other: "BinnedMatrix") -> "BinnedMatrix":
        """Append another binned matrix's features (same row count) to the right.

        This is how RIFS shares one binning of the real features across all
        injection rounds: only the per-round noise block is re-binned.
        """
        if other.n_rows != self.n_rows:
            raise ValueError(
                f"row counts differ: {self.n_rows} vs {other.n_rows}"
            )
        codes = np.empty((self.n_rows, self.n_features + other.n_features), dtype=np.uint8, order="F")
        codes[:, : self.n_features] = self.codes
        codes[:, self.n_features:] = other.codes
        names = None
        if self.feature_names is not None and other.feature_names is not None:
            names = self.feature_names + other.feature_names
        sources = None
        if self.source_columns is not None and other.source_columns is not None:
            sources = self.source_columns + other.source_columns
        return BinnedMatrix(
            codes,
            self.bin_min + other.bin_min,
            self.bin_max + other.bin_max,
            max(self.max_bins, other.max_bins),
            names,
            sources,
        )

    def __repr__(self) -> str:
        return (
            f"BinnedMatrix(shape={self.shape}, max_bins={self.max_bins}, "
            f"mean_bins={float(self.n_bins.mean()) if len(self.n_bins) else 0:.1f})"
        )
