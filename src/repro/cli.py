"""The unified command-line front end: ``python -m repro``.

One entrypoint for everything the repository ships operationally:

* ``inspect`` — describe a fitted artifact from its header alone (target,
  task, join plan with fingerprints, feature count, estimator kind, page
  sizes); no repository needed and no page is read.
* ``score`` — one-shot batch scoring: load an artifact, bind it to a
  repository (fingerprint validated), score a table of base rows and write
  (or print) the predictions.  ``--batch-rows`` switches to the
  bounded-memory streaming path.
* ``server`` (alias ``serve``) — run the resident
  :class:`~repro.serving.server.PredictionServer`: micro-batching HTTP
  scoring with hot artifact reload and a ``/metrics`` endpoint.
* ``repo stat`` — describe every table of a repository directory from file
  headers alone; the footer line proves only headers and zone maps were
  read.
* ``repo rechunk`` — rewrite one table (or every table) to a new row-group
  layout, atomically, without changing content fingerprints.
* ``sweep`` — the planted-ground-truth fuzzing sweep: sample seeded
  scenarios (``repro.datasets.sqlgen``), run discovery + ARDA end to end on
  each, and score against the plant; failing scenarios serialize JSON repro
  files that ``sweep --replay FILE`` re-runs standalone.

``python -m repro.serve`` and ``python -m repro.repo`` remain as thin
deprecated shims that forward here.

Examples::

    python -m repro inspect model.pipeline
    python -m repro score model.pipeline --repository lake/ \\
        --rows fresh.csv --output predictions.csv --batch-rows 50000
    python -m repro server model.pipeline --repository lake/ --port 8765
    python -m repro repo stat lake/
    python -m repro repo rechunk lake/ orders --chunk-rows 65536
    python -m repro sweep --n-scenarios 100 --seed 0 --json
    python -m repro sweep --replay _sweep_failures/sqlgen-quick-s0-i7.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import ServingConfig
from repro.discovery.repository import DataRepository
from repro.relational.column import Column
from repro.relational.io import read_csv, write_csv
from repro.relational.persist import (
    MAGIC,
    TableFormatError,
    TableHeader,
    bytes_read_detail,
    reset_bytes_read,
)
from repro.relational.table import Table
from repro.serving.artifact import ArtifactError, read_artifact_header
from repro.serving.pipeline import FittedPipeline
from repro.serving.server import PredictionServer

__all__ = ["main"]


def _load_rows(path: Path) -> Table:
    """Read serving rows from a native ``.tbl`` or a CSV file.

    Dispatches on *content*, not file extension: a file starting with the
    native table magic is memory-mapped via :meth:`Table.load`, anything
    that decodes as text is parsed as CSV (so ``rows.CSV``, ``rows.txt`` or
    an extensionless export all work), and anything else fails with an error
    naming the two accepted formats instead of a deep format-layer
    traceback.
    """
    with open(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head == MAGIC:
        return Table.load(path)
    try:
        return read_csv(path, name=path.stem)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValueError(
            f"{path} is neither a native table file (magic {MAGIC!r}) nor "
            f"parseable CSV: {exc}"
        ) from exc


# -- artifact commands ---------------------------------------------------------


def _cmd_inspect(args) -> int:
    header = read_artifact_header(args.artifact)
    doc = header["doc"]
    page_bytes = sum(page["nbytes"] for page in header["pages"])
    print(f"artifact   : {args.artifact}")
    print(f"version    : {header['version']}")
    print(f"target     : {doc['target']}  ({doc['task']})")
    print(f"base cols  : {len(doc['base_schema'])}")
    print(f"features   : {sum(len(c['feature_names']) for c in doc['encoder']['columns'])}")
    print(f"estimator  : {doc['estimator'].get('kind', '?')}")
    print(f"pages      : {len(header['pages'])} ({page_bytes / 1e3:.1f} kB)")
    print(f"joins      : {len(doc['joins'])}")
    for step in doc["joins"]:
        keys = ", ".join(f"{b}->{f}{'~' if soft else ''}" for b, f, soft in step["keys"])
        print(
            f"  - {step['foreign_table']} [{keys}] keeps "
            f"{len(step['column_names'])} columns "
            f"(fingerprint {step['fingerprint'][:12]}…)"
        )
    if args.json:
        print(json.dumps(doc, indent=2, default=str))
    return 0


def _cmd_score(args) -> int:
    if args.repository is not None:
        repository = DataRepository.open(args.repository, lru_tables=args.lru_tables)
    else:
        repository = None
    pipeline = FittedPipeline.load(args.artifact, repository=repository)
    if pipeline.joins and repository is None:
        print(
            "error: this pipeline replays joins; pass --repository DIR",
            file=sys.stderr,
        )
        return 2
    rows = _load_rows(args.rows)
    predictions = pipeline.predict(
        rows,
        batch_rows=args.batch_rows,
        executor=args.executor,
        n_jobs=args.n_jobs,
    )
    out = Table([Column("prediction", list(predictions))], name="predictions")
    if args.output is not None:
        write_csv(out, args.output)
        print(f"wrote {len(predictions)} predictions to {args.output}")
    else:
        for value in predictions[: args.head]:
            print(value)
        if len(predictions) > args.head:
            print(f"... ({len(predictions)} total; use --output to write all)")
    return 0


def _cmd_server(args) -> int:
    config = ServingConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_batch_rows=args.max_batch_rows,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        max_request_rows=args.max_request_rows,
        reload_interval_s=args.reload_interval,
        drain_timeout_s=args.drain_timeout,
        executor=args.executor,
        n_jobs=args.n_jobs,
    )
    import signal
    import threading

    server = PredictionServer(args.artifact, repository=args.repository, config=config)
    # Take over SIGINT before the banner goes out: the banner is the caller's
    # cue that the server is up, so a SIGINT may arrive while the main thread
    # is still between start() and the wait below — with the default handler
    # that KeyboardInterrupt would escape the try block and kill the process
    # without draining.  An event-setting handler has no such window.
    stop = threading.Event()
    previous_handler = None
    try:
        previous_handler = signal.signal(signal.SIGINT, lambda signum, frame: stop.set())
    except ValueError:
        pass  # not the main thread (embedded use); fall back to KeyboardInterrupt
    server.start()
    host, port = server.address
    print(f"serving {args.artifact} on http://{host}:{port}", flush=True)
    print(
        f"  workers={config.workers} max_batch_rows={config.max_batch_rows} "
        f"max_wait_ms={config.max_wait_ms} reload_interval_s={config.reload_interval_s}",
        flush=True,
    )
    try:
        stop.wait()  # serve until interrupted
        print("draining ...", flush=True)
    except KeyboardInterrupt:
        print("draining ...", flush=True)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
        server.close()
    return 0


# -- sweep command -------------------------------------------------------------


def _cmd_sweep(args) -> int:
    import tempfile

    from repro.core.config import SweepConfig
    from repro.datasets.sqlgen import ScenarioSweep, replay_repro, run_streaming_scenario
    from repro.evaluation.reporting import format_sweep

    if args.replay is not None:
        score = replay_repro(args.replay)
        if args.json:
            print(json.dumps(score.to_doc(), indent=2, sort_keys=True))
        else:
            print(format_sweep([score]))
            for failure in score.failures:
                print(f"  FAIL: {failure}")
        return 0 if score.passed else 1

    config = SweepConfig(
        n_scenarios=args.n_scenarios,
        seed=args.seed,
        profile=args.profile,
        layout=args.layout,
        chunk_rows=args.chunk_rows,
        executor=args.executor,
        n_jobs=args.n_jobs,
        min_discovery_recall=args.min_recall,
        repro_dir=str(args.repro_dir),
    )
    sweep = ScenarioSweep(config)
    streaming = None
    if config.layout == "memory" and not args.streaming:
        result = sweep.run()
    else:
        with tempfile.TemporaryDirectory(prefix="arda-sweep-") as tmp:
            result = sweep.run(work_dir=None if config.layout == "memory" else tmp)
            if args.streaming:
                streaming = run_streaming_scenario(Path(tmp) / "streaming", seed=config.seed)

    if args.json:
        doc = {"summary": result.summary(), "scores": [s.to_doc() for s in result.scores]}
        if streaming is not None:
            doc["streaming"] = streaming.to_doc()
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_sweep(result.scores))
        summary = result.summary()
        print(
            f"{summary['scenarios']} scenarios ({summary['profile']}, "
            f"{summary['layout']}): {summary['failed']} failed, "
            f"mean discovery recall {summary['mean_discovery_recall']:.3f}, "
            f"mean selection recall {summary['mean_selection_recall']:.3f}, "
            f"mean uplift {summary['mean_uplift']:+.4f} "
            f"[{summary['elapsed_s']:.1f}s]"
        )
        for path in result.repro_files:
            print(f"repro file: {path}")
        if streaming is not None:
            status = "ok" if streaming.passed else "FAILED"
            print(
                f"streaming scenario: {status} ({streaming.n_batches} ingests, "
                f"generations {streaming.generations[0]}->{streaming.generations[-1]}, "
                f"{streaming.n_failed_requests}/{streaming.n_requests} failed requests, "
                f"predictions pinned: {streaming.predictions_pinned})"
            )
    failed = not result.passed or (streaming is not None and not streaming.passed)
    return 1 if failed else 0


# -- repository commands -------------------------------------------------------


def _zone_coverage(header: TableHeader) -> float | None:
    """Fraction of (chunk, column) zone-map slots carrying a (min, max) range.

    ``None`` for monolithic version-1 files, which have no zone map at all.
    A slot is empty when the chunk holds no valid value for that column, so
    coverage below 1.0 usually just reflects all-missing column stretches.
    """
    if not header.chunks:
        return None
    total = len(header.chunks) * len(header.columns)
    if total == 0:
        return None
    filled = sum(
        1 for chunk in header.chunks for zone in chunk.zones if zone is not None
    )
    return filled / total


def _header_file_size(header: TableHeader) -> int:
    """File size implied by the header alone: page zone start + page bytes."""
    return header.pages_start + header.pages_nbytes


def _chunk_zones(header: TableHeader) -> list[dict]:
    """Per-chunk zone-map key ranges, straight from the header.

    One entry per row group: its global row span plus, for every column, the
    ``[min, max]`` zone (value range for float-backed columns, code range for
    categoricals) or ``None`` when the chunk holds no valid value.  Empty for
    monolithic version-1 files.  This is what the streaming join's pruner
    consults, so an operator can judge prune-friendliness — a sort-ordered key
    shows disjoint, monotonically increasing ranges.
    """
    names = header.column_names
    return [
        {
            "chunk": index,
            "row_start": chunk.row_start,
            "rows": chunk.rows,
            "zones": {
                name: (list(zone) if zone is not None else None)
                for name, zone in zip(names, chunk.zones)
            },
        }
        for index, chunk in enumerate(header.chunks or ())
    ]


def _table_row(name: str, entry, include_zones: bool = False) -> dict:
    header = entry.header
    coverage = _zone_coverage(header)
    row = {
        "name": name,
        "rows": header.num_rows,
        "columns": len(header.columns),
        "version": 2 if header.chunks else 1,
        "chunks": header.num_chunks,
        "chunk_rows": header.chunk_rows,
        "sort_by": header.sort_by,
        "zone_coverage": coverage,
        "file_bytes": _header_file_size(header),
        "fingerprint": header.fingerprint,
        "file": entry.path.name,
    }
    if include_zones:
        row["chunk_zones"] = _chunk_zones(header)
    return row


def _cmd_stat(args) -> int:
    reset_bytes_read()
    repository = DataRepository.open(args.directory, load_profiles=False)
    rows = []
    for name in sorted(repository.table_names):
        entry = repository._catalog.get(name)
        if entry is None:
            continue  # in-memory only; nothing on disk to describe
        rows.append(_table_row(name, entry, include_zones=args.json))
    detail = bytes_read_detail()
    if args.json:
        print(json.dumps({"tables": rows, "bytes_read": detail}, indent=2))
        return 0
    if not rows:
        print(f"{args.directory}: no tables")
        return 0
    fmt = "{:<20} {:>10} {:>5} {:>3} {:>7} {:>11} {:>9} {:>12} {:>12}"
    print(fmt.format("table", "rows", "cols", "ver", "chunks", "chunk_rows", "zones",
                     "sorted_by", "bytes"))
    for row in rows:
        coverage = "-" if row["zone_coverage"] is None else f"{row['zone_coverage']:.0%}"
        target = "-" if row["chunk_rows"] is None else str(row["chunk_rows"])
        print(
            fmt.format(
                row["name"],
                row["rows"],
                row["columns"],
                f"v{row['version']}",
                row["chunks"],
                target,
                coverage,
                row["sort_by"] or "-",
                row["file_bytes"],
            )
        )
    total_bytes = sum(row["file_bytes"] for row in rows)
    total_chunks = sum(row["chunks"] for row in rows)
    print(
        f"{len(rows)} tables, {total_chunks} chunks, "
        f"{total_bytes / 1e6:.2f} MB (header-derived)"
    )
    read = ", ".join(f"{kind}={count}" for kind, count in sorted(detail.items()) if count)
    print(f"bytes read: {read or 'none'}  (headers and zone maps only)")
    return 0


def _cmd_rechunk(args) -> int:
    if args.all == (args.table is not None):
        print("error: name exactly one table, or pass --all", file=sys.stderr)
        return 2
    repository = DataRepository.open(args.directory, load_profiles=False)
    names = sorted(repository._catalog) if args.all else [args.table]
    for name in names:
        before = repository._catalog[name].header.num_chunks
        repository.rechunk(name, chunk_rows=args.chunk_rows, sort_by=args.sort_by)
        entry = repository._catalog[name]
        marker = f", sorted by {entry.header.sort_by}" if entry.header.sort_by else ""
        print(f"{name}: {before} -> {entry.header.num_chunks} chunks "
              f"({entry.path.name}{marker})")
    return 0


# -- parser --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="describe an artifact from its header")
    inspect.add_argument("artifact", type=Path, help="path to a .pipeline artifact")
    inspect.add_argument("--json", action="store_true", help="also dump the full header doc")
    inspect.set_defaults(func=_cmd_inspect)

    score = sub.add_parser("score", help="batch-score rows with a fitted pipeline")
    score.add_argument("artifact", type=Path, help="path to a .pipeline artifact")
    score.add_argument("--rows", type=Path, required=True, help="base rows (.tbl or CSV)")
    score.add_argument(
        "--repository", type=Path, default=None,
        help="directory of binary tables the fitted joins replay against",
    )
    score.add_argument("--output", type=Path, default=None, help="write predictions CSV here")
    score.add_argument(
        "--batch-rows", type=int, default=None,
        help="stream in micro-batches of this many rows (bounded memory)",
    )
    score.add_argument("--executor", default="serial", choices=["serial", "thread", "process"])
    score.add_argument("--n-jobs", type=int, default=None)
    score.add_argument("--lru-tables", type=int, default=16)
    score.add_argument("--head", type=int, default=10, help="predictions to print without --output")
    score.set_defaults(func=_cmd_score)

    defaults = ServingConfig()
    server = sub.add_parser(
        "server", aliases=["serve"],
        help="run the resident micro-batching prediction server",
    )
    server.add_argument("artifact", type=Path, help="path to a .pipeline artifact")
    server.add_argument(
        "--repository", type=Path, default=None,
        help="directory of binary tables the fitted joins replay against",
    )
    server.add_argument("--host", default=defaults.host)
    server.add_argument("--port", type=int, default=defaults.port, help="0 = ephemeral")
    server.add_argument("--workers", type=int, default=defaults.workers)
    server.add_argument("--max-batch-rows", type=int, default=defaults.max_batch_rows)
    server.add_argument("--max-wait-ms", type=float, default=defaults.max_wait_ms)
    server.add_argument("--queue-depth", type=int, default=defaults.queue_depth)
    server.add_argument("--max-request-rows", type=int, default=defaults.max_request_rows)
    server.add_argument(
        "--reload-interval", type=float, default=defaults.reload_interval_s,
        help="seconds between hot-reload checks (0 disables the watcher)",
    )
    server.add_argument("--drain-timeout", type=float, default=defaults.drain_timeout_s)
    server.add_argument("--executor", default=defaults.executor,
                        choices=["serial", "thread", "process"])
    server.add_argument("--n-jobs", type=int, default=defaults.n_jobs)
    server.set_defaults(func=_cmd_server)

    sweep = sub.add_parser(
        "sweep",
        help="planted-ground-truth scenario sweep over the full pipeline",
    )
    sweep.add_argument("--n-scenarios", type=int, default=20, help="scenarios to sample")
    sweep.add_argument("--seed", type=int, default=0, help="root seed of every sampler")
    sweep.add_argument("--profile", default="quick", choices=["quick", "full"])
    sweep.add_argument(
        "--layout", default="monolithic", choices=["monolithic", "chunked", "memory"],
        help="repository layout scenarios materialise into (scores are identical)",
    )
    sweep.add_argument("--chunk-rows", type=int, default=64, help="row-group target for --layout chunked")
    sweep.add_argument("--executor", default="serial", choices=["serial", "thread", "process"])
    sweep.add_argument("--n-jobs", type=int, default=None)
    sweep.add_argument(
        "--min-recall", type=float, default=0.9,
        help="per-scenario floor on planted-join discovery recall",
    )
    sweep.add_argument(
        "--repro-dir", type=Path, default=Path("_sweep_failures"),
        help="failing scenarios serialize JSON repro files here",
    )
    sweep.add_argument(
        "--replay", type=Path, default=None, metavar="FILE",
        help="re-run one failing scenario from its JSON repro file and exit",
    )
    sweep.add_argument(
        "--streaming", action="store_true",
        help="also run the append-only micro-batch ingest scenario against a live server",
    )
    sweep.add_argument("--json", action="store_true", help="machine-readable output")
    sweep.set_defaults(func=_cmd_sweep)

    repo = sub.add_parser("repo", help="repository maintenance (stat, rechunk)")
    repo_sub = repo.add_subparsers(dest="repo_command", required=True)

    stat = repo_sub.add_parser("stat", help="describe a repository from headers alone")
    stat.add_argument("directory", type=Path, help="repository directory of .tbl files")
    stat.add_argument("--json", action="store_true", help="machine-readable output")
    stat.set_defaults(func=_cmd_stat)

    rechunk = repo_sub.add_parser("rechunk", help="rewrite tables to a new row-group layout")
    rechunk.add_argument("directory", type=Path, help="repository directory of .tbl files")
    rechunk.add_argument("table", nargs="?", default=None, help="table to rewrite")
    rechunk.add_argument("--all", action="store_true", help="rewrite every table")
    rechunk.add_argument(
        "--chunk-rows", type=int, default=None,
        help="row-group target (0 = monolithic v1 file; default: "
        "ARDA_CHUNK_ROWS or the streaming default)",
    )
    rechunk.add_argument(
        "--sort-by", default=None, metavar="COLUMN",
        help="physically sort rows by this non-categorical column so chunk "
        "zone maps become disjoint ranges the streaming join can binary-search",
    )
    rechunk.set_defaults(func=_cmd_rechunk)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        # validation KeyErrors carry a full sentence; strip the repr quotes
        # they acquire as an exception argument
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 1
    except (
        ArtifactError,
        TableFormatError,
        FileNotFoundError,
        NotADirectoryError,
        TypeError,
        ValueError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
