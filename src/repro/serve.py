"""Deprecated shim: ``python -m repro.serve`` → ``python -m repro``.

The serving front end moved into the unified CLI (:mod:`repro.cli`);
``inspect`` and ``score`` keep their exact argument surface there::

    python -m repro inspect model.pipeline
    python -m repro score model.pipeline --repository lake/ --rows fresh.csv

This module stays importable and runnable so existing scripts keep working,
but emits a :class:`DeprecationWarning` and simply forwards.
"""

from __future__ import annotations

import sys
import warnings

from repro.cli import _cmd_inspect, _cmd_score, _load_rows, main as _cli_main

__all__ = ["main"]

# re-exported for callers that imported the helpers from here
_cmd_inspect = _cmd_inspect
_cmd_score = _cmd_score
_load_rows = _load_rows


def main(argv: list[str] | None = None) -> int:
    """Forward to ``python -m repro`` (same subcommand names)."""
    warnings.warn(
        "python -m repro.serve is deprecated; use python -m repro "
        "(same subcommands: inspect, score)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _cli_main(list(argv) if argv is not None else sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
