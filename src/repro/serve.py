"""Command-line front end for serving artifacts: ``python -m repro.serve``.

Two subcommands:

* ``inspect`` — describe an artifact from its header alone (target, task,
  join plan with fingerprints, feature count, estimator kind, page sizes);
  no repository needed and no page is read.
* ``score`` — load an artifact, bind it to a repository (fingerprint
  validated), score a table of base rows and write (or print) the
  predictions.  ``--batch-rows`` switches to the bounded-memory streaming
  path; ``--executor``/``--n-jobs`` pick the join-replay backend (results
  are identical across backends).

Examples::

    python -m repro.serve inspect model.pipeline
    python -m repro.serve score model.pipeline --repository lake/ \\
        --rows fresh.csv --output predictions.csv --batch-rows 50000
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.discovery.repository import DataRepository
from repro.relational.column import Column
from repro.relational.io import read_csv, write_csv
from repro.relational.table import Table
from repro.serving.artifact import ArtifactError, read_artifact_header
from repro.serving.pipeline import FittedPipeline


def _load_rows(path: Path) -> Table:
    """Read serving rows from a ``.tbl`` (memory-mapped) or ``.csv`` file."""
    if path.suffix == ".csv":
        return read_csv(path, name=path.stem)
    return Table.load(path)


def _cmd_inspect(args) -> int:
    header = read_artifact_header(args.artifact)
    doc = header["doc"]
    page_bytes = sum(page["nbytes"] for page in header["pages"])
    print(f"artifact   : {args.artifact}")
    print(f"version    : {header['version']}")
    print(f"target     : {doc['target']}  ({doc['task']})")
    print(f"base cols  : {len(doc['base_schema'])}")
    print(f"features   : {sum(len(c['feature_names']) for c in doc['encoder']['columns'])}")
    print(f"estimator  : {doc['estimator'].get('kind', '?')}")
    print(f"pages      : {len(header['pages'])} ({page_bytes / 1e3:.1f} kB)")
    print(f"joins      : {len(doc['joins'])}")
    for step in doc["joins"]:
        keys = ", ".join(f"{b}->{f}{'~' if soft else ''}" for b, f, soft in step["keys"])
        print(
            f"  - {step['foreign_table']} [{keys}] keeps "
            f"{len(step['column_names'])} columns "
            f"(fingerprint {step['fingerprint'][:12]}…)"
        )
    if args.json:
        print(json.dumps(doc, indent=2, default=str))
    return 0


def _cmd_score(args) -> int:
    if args.repository is not None:
        repository = DataRepository.open(args.repository, lru_tables=args.lru_tables)
    else:
        repository = None
    pipeline = FittedPipeline.load(args.artifact, repository=repository)
    if pipeline.joins and repository is None:
        print(
            "error: this pipeline replays joins; pass --repository DIR",
            file=sys.stderr,
        )
        return 2
    rows = _load_rows(args.rows)
    predictions = pipeline.predict(
        rows,
        batch_rows=args.batch_rows,
        executor=args.executor,
        n_jobs=args.n_jobs,
    )
    out = Table([Column("prediction", list(predictions))], name="predictions")
    if args.output is not None:
        write_csv(out, args.output)
        print(f"wrote {len(predictions)} predictions to {args.output}")
    else:
        for value in predictions[: args.head]:
            print(value)
        if len(predictions) > args.head:
            print(f"... ({len(predictions)} total; use --output to write all)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="describe an artifact from its header")
    inspect.add_argument("artifact", type=Path, help="path to a .pipeline artifact")
    inspect.add_argument("--json", action="store_true", help="also dump the full header doc")
    inspect.set_defaults(func=_cmd_inspect)

    score = sub.add_parser("score", help="batch-score rows with a fitted pipeline")
    score.add_argument("artifact", type=Path, help="path to a .pipeline artifact")
    score.add_argument("--rows", type=Path, required=True, help="base rows (.tbl or .csv)")
    score.add_argument(
        "--repository", type=Path, default=None,
        help="directory of binary tables the fitted joins replay against",
    )
    score.add_argument("--output", type=Path, default=None, help="write predictions CSV here")
    score.add_argument(
        "--batch-rows", type=int, default=None,
        help="stream in micro-batches of this many rows (bounded memory)",
    )
    score.add_argument("--executor", default="serial", choices=["serial", "thread", "process"])
    score.add_argument("--n-jobs", type=int, default=None)
    score.add_argument("--lru-tables", type=int, default=16)
    score.add_argument("--head", type=int, default=10, help="predictions to print without --output")
    score.set_defaults(func=_cmd_score)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        # serving-row validation raises KeyError with a full sentence; strip
        # the repr quotes it acquires as an exception argument
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 1
    except (ArtifactError, FileNotFoundError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
