"""Request/response codec of the resident serving server.

Translates the wire shape (JSON row dictionaries in, JSON prediction lists
out) to and from the pipeline shape (:class:`~repro.relational.table.Table`
in, ``np.ndarray`` out).  All *value* coercion is delegated to the column
layer by pinning each base column to its fitted logical type — the very same
``Column`` constructors decode CSV text at training time, so a JSON string
``"3.5"`` in a numeric column or an ISO timestamp in a datetime column lands
byte-identically to the offline path.  The codec itself only validates the
*shape* of the payload, raising :class:`RequestError` with a client-facing
message for anything malformed (the server maps it to HTTP 400).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from repro.relational.schema import ColumnType
from repro.relational.table import Table

__all__ = ["RequestError", "parse_predict_payload", "predictions_to_payload", "rows_to_table"]


class RequestError(ValueError):
    """A malformed predict request (maps to HTTP 400)."""


def parse_predict_payload(payload: object) -> tuple[list[dict], bool]:
    """Normalise a decoded ``/predict`` JSON body to ``(rows, single)``.

    Accepted shapes: one row object ``{"col": value, ...}``, a bare list of
    row objects, or an envelope ``{"rows": [...]}``.  ``single`` is True for
    the one-row object form — the response then carries ``"prediction"``
    (scalar) instead of ``"predictions"`` (list).
    """
    single = False
    if isinstance(payload, Mapping):
        if "rows" in payload:
            rows = payload["rows"]
            if not isinstance(rows, list):
                raise RequestError('"rows" must be a list of row objects')
        else:
            rows, single = [payload], True
    elif isinstance(payload, list):
        rows = payload
    else:
        raise RequestError(
            "predict payload must be a row object, a list of row objects, "
            'or {"rows": [...]}'
        )
    for i, row in enumerate(rows):
        if not isinstance(row, Mapping):
            raise RequestError(f"row {i} is not an object: {type(row).__name__}")
    if not rows:
        raise RequestError("predict payload contains no rows")
    return list(rows), single


def rows_to_table(rows: list[dict], base_schema: list[tuple[str, str]]) -> Table:
    """Build a serving table from row dictionaries, pinned to fitted types.

    Every column named in ``base_schema`` keeps its train-time logical type,
    so value coercion (strings to floats, ISO timestamps to epoch seconds,
    ``null`` to missing) runs through the same column kernels training used.
    Columns absent from the schema are left to inference — the pipeline drops
    them anyway.  Coercion failures (e.g. ``"abc"`` in a numeric column)
    surface as :class:`RequestError` naming the offending column.
    """
    types = {name: ColumnType(ctype) for name, ctype in base_schema}
    present = {key for row in rows for key in row}
    try:
        return Table.from_rows(
            rows, types={k: v for k, v in types.items() if k in present}
        )
    except (ValueError, TypeError) as exc:
        raise RequestError(f"could not decode rows: {exc}") from exc


def predictions_to_payload(predictions: np.ndarray) -> list:
    """JSON-safe list form of a prediction vector.

    Numeric predictions become floats with ``NaN``/``inf`` mapped to ``null``
    (strict JSON has no ``NaN`` literal); decoded classification labels pass
    through as strings, with unmapped codes as ``null``.
    """
    out: list = []
    for value in np.asarray(predictions).tolist():
        if value is None or isinstance(value, str):
            out.append(value)
        else:
            number = float(value)
            out.append(number if math.isfinite(number) else None)
    return out
