"""The fitted augmentation pipeline: capture at train time, replay at serve time.

:class:`FittedPipeline` is everything ``ARDA.augment`` learned, packaged for
inference on unseen base rows **without re-running discovery or selection**:

* the accepted join plan — per kept join, the foreign table name, its content
  fingerprint, the key pairs and which of the join's columns were selected
  (by position, with the pinned output names);
* the fitted imputation statistics
  (:class:`~repro.relational.imputation.FittedImputer`);
* the fitted encoders — one-hot category lists and frequency tables
  (:class:`~repro.relational.encoding.FittedEncoder`);
* the selected-feature list with provenance
  (:class:`~repro.selection.base.FeatureProvenance` per kept column);
* the trained estimator, serialised via
  :mod:`repro.ml.persistence`.

Transform and predict come in two shapes: vectorized batch over a whole
:class:`~repro.relational.table.Table`, and micro-batch streaming
(:meth:`FittedPipeline.iter_transform` / :meth:`iter_predict`) whose peak
memory is bounded by the micro-batch size — the streaming iterator slices the
input with zero-copy views, so a memory-mapped repository table is paged in
one micro-batch at a time.

Determinism contract:

* ``transform`` applied to the training base table reproduces the training
  design matrix **byte-for-byte** (the replay runs the very kernels training
  ran, seeded identically);
* predictions are byte-identical across the serial / thread / process join
  executors (inherited from :func:`repro.core.join_execution.replay_kept_joins`);
* for a fixed micro-batch size, streaming results are deterministic; note
  that serve-time *random* draws (categorical imputation of rows with
  missing values, soft-join tie-breaks) restart their seeded stream per
  transform call, so a different batching of rows with missing categoricals
  may impute them differently — each batching is individually deterministic.

Artifacts are validated two ways on load: the container version
(:class:`~repro.serving.artifact.ArtifactError` on mismatch) and, when bound
to a repository, the stored per-table content fingerprints — a repository
whose tables drifted since training raises instead of silently mis-joining.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.core.executor import JoinExecutor, make_executor
from repro.core.join_execution import replay_kept_joins
from repro.discovery.candidates import JoinCandidate, KeyPair
from repro.discovery.repository import DataRepository, RepositorySnapshot
from repro.ml.persistence import estimator_from_state, estimator_to_state
from repro.relational.encoding import ColumnEncoderState, FittedEncoder
from repro.relational.imputation import ColumnImputeState, FittedImputer
from repro.relational.persist import table_fingerprint
from repro.relational.schema import CATEGORICAL, ColumnType
from repro.relational.table import Table
from repro.selection.base import CLASSIFICATION, FeatureProvenance
from repro.serving.artifact import ArtifactError, read_artifact, write_artifact

DEFAULT_BATCH_ROWS = 65_536


class JoinStep:
    """One kept join of the accepted plan, as replayed at serve time.

    ``positions`` index into the columns this candidate's join adds (foreign
    column order); ``column_names`` are the pinned output names the training
    augmented table used.  ``fingerprint`` is the foreign table's content
    fingerprint at train time, checked against the serving repository before
    any join runs.
    """

    def __init__(
        self,
        foreign_table: str,
        fingerprint: str,
        keys: list[tuple[str, str, bool]],
        positions: list[int],
        column_names: list[str],
    ):
        self.foreign_table = foreign_table
        self.fingerprint = fingerprint
        self.keys = [(b, f, bool(s)) for b, f, s in keys]
        self.positions = list(positions)
        self.column_names = list(column_names)

    def to_candidate(self) -> JoinCandidate:
        """The :class:`JoinCandidate` form the join layer executes."""
        return JoinCandidate(
            foreign_table=self.foreign_table,
            keys=[KeyPair(b, f, soft=s) for b, f, s in self.keys],
        )

    def to_doc(self) -> dict:
        """Plain-JSON form stored in the artifact header."""
        return {
            "foreign_table": self.foreign_table,
            "fingerprint": self.fingerprint,
            "keys": [[b, f, s] for b, f, s in self.keys],
            "positions": self.positions,
            "column_names": self.column_names,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "JoinStep":
        """Inverse of :meth:`to_doc`."""
        return cls(
            foreign_table=doc["foreign_table"],
            fingerprint=doc["fingerprint"],
            keys=[tuple(key) for key in doc["keys"]],
            positions=doc["positions"],
            column_names=doc["column_names"],
        )

    def __repr__(self) -> str:
        keys = ", ".join(f"{b}->{f}{'~' if s else ''}" for b, f, s in self.keys)
        return (
            f"JoinStep({self.foreign_table!r}, [{keys}], "
            f"keeps {len(self.column_names)} columns)"
        )


class FittedPipeline:
    """A fitted, persistable, servable augmentation pipeline.

    Built by ``ARDA.augment`` (returned on
    :attr:`~repro.core.results.AugmentationReport.pipeline`) or restored via
    :meth:`load`.  See the module docstring for the determinism contract.
    """

    def __init__(
        self,
        *,
        target: str,
        task: str,
        seed: int,
        soft_strategy: str,
        time_resample: bool,
        base_schema: list[tuple[str, str]],
        joins: list[JoinStep],
        imputer: FittedImputer,
        encoder: FittedEncoder,
        estimator,
        target_categories: list[str] | None = None,
        provenance: list[FeatureProvenance] | None = None,
        metadata: dict | None = None,
    ):
        self.target = target
        self.task = task
        self.seed = seed
        self.soft_strategy = soft_strategy
        self.time_resample = time_resample
        self.base_schema = [(name, ctype) for name, ctype in base_schema]
        self.joins = joins
        self.imputer = imputer
        self.encoder = encoder
        self.estimator = estimator
        self.target_categories = target_categories
        self.provenance = provenance or []
        self.metadata = metadata or {}
        # the validated view joins replay against (a snapshot when bound to a
        # live repository), the object bind() was originally handed, and
        # whether we created — and must release — the snapshot ourselves
        self._repository: DataRepository | RepositorySnapshot | None = None
        self._bound_source: DataRepository | RepositorySnapshot | None = None
        self._owns_snapshot = False

    # -- introspection ---------------------------------------------------------

    @property
    def feature_names(self) -> list[str]:
        """Design-matrix column names, in training order."""
        return self.encoder.feature_names

    @property
    def base_columns(self) -> list[str]:
        """Training base-table column names (including the target)."""
        return [name for name, _ctype in self.base_schema]

    @property
    def required_columns(self) -> list[str]:
        """Base columns serving rows must provide (target excluded)."""
        return [name for name in self.base_columns if name != self.target]

    def summary(self) -> dict:
        """Compact description used by ``python -m repro.serve inspect``."""
        return {
            "target": self.target,
            "task": self.task,
            "base_columns": len(self.base_schema),
            "joins": [
                {
                    "table": step.foreign_table,
                    "fingerprint": step.fingerprint,
                    "columns": step.column_names,
                }
                for step in self.joins
            ],
            "kept_columns": [p.to_doc() for p in self.provenance],
            "features": len(self.feature_names),
            "estimator": type(self.estimator).__name__,
            "metadata": dict(self.metadata),
        }

    # -- repository binding ----------------------------------------------------

    def bind(
        self, repository: DataRepository | RepositorySnapshot
    ) -> "FittedPipeline":
        """Validate ``repository`` against the stored fingerprints and keep it.

        Every kept join's foreign table must exist and fingerprint-match its
        train-time content; a drifted or missing table raises
        :class:`~repro.serving.artifact.ArtifactError` — refusing to serve
        beats silently joining different data.  Disk-backed repositories are
        validated from catalog headers without reading any table body.

        A live :class:`~repro.discovery.repository.DataRepository` is pinned
        as a snapshot of its current manifest generation: validation and every
        subsequent join replay read that one generation, so a concurrent
        ``replace`` can neither drift a table under a validated pipeline nor
        tear a multi-table join plan.  Re-``bind`` the same repository to pick
        up a newer generation (hot reload) — the fingerprints are re-validated
        and the previous pin is dropped.  Pass a
        :class:`~repro.discovery.repository.RepositorySnapshot` to serve a
        specific pinned generation; its lifetime then stays with the caller.
        Returns ``self`` for chaining.
        """
        source = repository
        if isinstance(repository, DataRepository):
            view: DataRepository | RepositorySnapshot = repository.snapshot()
            owns = True
        else:
            view = repository
            owns = False
        try:
            for step in self.joins:
                if step.foreign_table not in view:
                    raise ArtifactError(
                        f"repository has no table {step.foreign_table!r} "
                        f"required by the fitted join plan"
                    )
                try:
                    fingerprint = view.header(step.foreign_table).fingerprint
                except KeyError:
                    fingerprint = table_fingerprint(view.get(step.foreign_table))
                if fingerprint != step.fingerprint:
                    raise ArtifactError(
                        f"table {step.foreign_table!r} drifted since training: "
                        f"fingerprint {fingerprint} != fitted {step.fingerprint} "
                        f"(re-fit the pipeline or restore the table)"
                    )
        except BaseException:
            if owns:
                view.release()
            raise
        if self._owns_snapshot and isinstance(self._repository, RepositorySnapshot):
            self._repository.release()
        self._repository = view
        self._bound_source = source
        self._owns_snapshot = owns
        return self

    def _resolve_repository(
        self, repository: DataRepository | RepositorySnapshot | None
    ) -> DataRepository | RepositorySnapshot:
        if repository is not None:
            # the object a caller passes per-request is usually the one bind()
            # already pinned (or the pin itself): neither needs re-validation
            if repository is not self._repository and repository is not self._bound_source:
                self.bind(repository)
            return self._repository if self._repository is not None else repository
        if self._repository is None:
            raise ValueError(
                "this pipeline replays joins and needs a repository: pass "
                "repository=... or call bind() first"
            )
        return self._repository

    def warm(self) -> "FittedPipeline":
        """Materialise every join-plan foreign table in the bound view.

        Snapshot pinning protects files this process has *opened* (a memory
        map survives its path being replaced), but a pin alone is invisible
        to a writer in another process, which may garbage-collect superseded
        files this reader never touched.  A resident server that must keep
        serving an old generation across writer-side GC therefore touches
        every table its join plan needs right after binding — this method is
        that touch.  No-op for a join-free pipeline; requires :meth:`bind`
        (or a training-time binding) first.  Returns ``self`` for chaining.
        """
        if self.joins and self._repository is None:
            raise ValueError("warm() needs a bound repository: call bind() first")
        for step in self.joins:
            self._repository.get(step.foreign_table)
        return self

    def release(self) -> None:
        """Drop the bound repository view, releasing any snapshot we pinned.

        Only snapshots :meth:`bind` created from a live repository are
        released; a caller-supplied snapshot's lifetime stays with the
        caller.  Idempotent; the pipeline can be re-``bind``-ed afterwards.
        """
        if self._owns_snapshot and isinstance(self._repository, RepositorySnapshot):
            self._repository.release()
        self._repository = None
        self._bound_source = None
        self._owns_snapshot = False

    # -- inference -------------------------------------------------------------

    def _check_rows(self, rows: Table) -> Table:
        """Validate serving rows and project them onto the fitted base columns.

        All non-target base columns must be present with their training
        logical types; the target may ride along (it is ignored for
        prediction).  Extra columns are dropped so they cannot collide with
        the pinned names of replayed join columns.
        """
        missing = [name for name in self.required_columns if name not in rows]
        if missing:
            raise KeyError(f"serving rows are missing base columns: {missing}")
        for name, ctype_value in self.base_schema:
            if name not in rows:
                continue
            expected = ColumnType(ctype_value)
            actual = rows.column(name).ctype
            if (actual is CATEGORICAL) != (expected is CATEGORICAL):
                raise TypeError(
                    f"column {name!r} is {actual.value}, but the pipeline was "
                    f"fitted on {expected.value}"
                )
        return rows.select([name for name in self.base_columns if name in rows])

    def transform(
        self,
        rows: Table,
        repository: DataRepository | RepositorySnapshot | None = None,
        executor: str | JoinExecutor = "serial",
        n_jobs: int | None = None,
    ) -> np.ndarray:
        """Replay joins, imputation and encoding on ``rows``.

        Returns the float design matrix with the training feature layout
        (:attr:`feature_names`).  On the training base table this reproduces
        the training design matrix byte-for-byte; the result is identical
        across executor backends.  A chunked table source materialises first
        (the output matrix is whole anyway); use :meth:`iter_transform` to
        keep the input out-of-core.
        """
        if not isinstance(rows, Table) and hasattr(rows, "iter_chunks"):
            rows = rows.table()
        base = self._check_rows(rows)
        if self.joins:
            repo = self._resolve_repository(repository)
            owns_executor = isinstance(executor, str)
            pool = make_executor(executor, n_jobs) if owns_executor else executor
            try:
                joined = replay_kept_joins(
                    base,
                    repo,
                    [(s.to_candidate(), s.positions, s.column_names) for s in self.joins],
                    soft_strategy=self.soft_strategy,
                    time_resample=self.time_resample,
                    rng=np.random.default_rng(self.seed),
                    executor=pool,
                )
            finally:
                if owns_executor:
                    pool.shutdown()
        else:
            joined = base
        imputed = self.imputer.transform(joined)
        return self.encoder.transform(imputed)

    def iter_transform(
        self,
        rows: Table,
        repository: DataRepository | RepositorySnapshot | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        executor: str | JoinExecutor = "serial",
        n_jobs: int | None = None,
    ):
        """Stream :meth:`transform` over micro-batches of ``rows``.

        Yields one design matrix per micro-batch.  Each batch is cut as a
        zero-copy row view, so only the columns the batch actually touches
        are materialised — peak memory is bounded by ``batch_rows`` (times
        the feature width), not by ``len(rows)``, which is what lets a
        memory-mapped repository table stream through a small resident set.
        The executor pool is created once and shared by every micro-batch
        (a per-batch pool would pay process-pool startup per batch).

        ``rows`` may also be a chunked table source
        (:class:`~repro.relational.persist.ChunkedTableReader`, anything with
        ``iter_chunks``): row groups then stream straight off the file —
        sub-batched to ``batch_rows`` — so an out-of-core table transforms
        under a one-chunk memory bound without ever materialising.
        """
        if batch_rows < 1:
            raise ValueError("batch_rows must be >= 1")
        owns_executor = isinstance(executor, str) and bool(self.joins)
        pool = make_executor(executor, n_jobs) if owns_executor else executor
        try:
            if not isinstance(rows, Table) and hasattr(rows, "iter_chunks"):
                empty = True
                for chunk in rows.iter_chunks():
                    for start in range(0, chunk.num_rows, batch_rows):
                        stop = min(start + batch_rows, chunk.num_rows)
                        empty = False
                        yield self.transform(
                            chunk.take(np.arange(start, stop)),
                            repository=repository,
                            executor=pool,
                            n_jobs=n_jobs,
                        )
                if empty:
                    yield self.transform(
                        rows.table(),
                        repository=repository,
                        executor=pool,
                        n_jobs=n_jobs,
                    )
                return
            n = rows.num_rows
            for start in range(0, n, batch_rows):
                stop = min(start + batch_rows, n)
                yield self.transform(
                    rows.take(np.arange(start, stop)),
                    repository=repository,
                    executor=pool,
                    n_jobs=n_jobs,
                )
            if n == 0:
                yield self.transform(
                    rows, repository=repository, executor=pool, n_jobs=n_jobs
                )
        finally:
            if owns_executor:
                pool.shutdown()

    def _decode_predictions(self, raw: np.ndarray) -> np.ndarray:
        """Map raw estimator output back to target values.

        Classification over a categorical target decodes class codes to the
        training label strings; numeric targets pass through as floats.
        """
        if self.task == CLASSIFICATION and self.target_categories is not None:
            codes = np.asarray(np.rint(raw), dtype=np.int64)
            labels = np.array(self.target_categories, dtype=object)
            out = np.empty(len(codes), dtype=object)
            valid = (codes >= 0) & (codes < len(labels))
            out[valid] = labels[codes[valid]]
            return out
        return np.asarray(raw, dtype=np.float64)

    def predict(
        self,
        rows: Table,
        repository: DataRepository | RepositorySnapshot | None = None,
        executor: str | JoinExecutor = "serial",
        n_jobs: int | None = None,
        batch_rows: int | None = None,
    ) -> np.ndarray:
        """Predict the target for serving rows.

        ``batch_rows`` switches to the bounded-memory streaming path and
        concatenates the per-batch predictions.  Classification over a
        categorical training target returns decoded labels; everything else
        returns floats.  A chunked table source (anything with
        ``iter_chunks``) always takes the streaming path, so predicting over
        an out-of-core table never materialises it (only the prediction
        vector itself is whole).
        """
        if batch_rows is None and not isinstance(rows, Table) and hasattr(rows, "iter_chunks"):
            batch_rows = DEFAULT_BATCH_ROWS
        if batch_rows is not None:
            parts = list(
                self.iter_predict(
                    rows,
                    repository=repository,
                    batch_rows=batch_rows,
                    executor=executor,
                    n_jobs=n_jobs,
                )
            )
            return np.concatenate(parts) if parts else np.empty(0)
        X = self.transform(rows, repository=repository, executor=executor, n_jobs=n_jobs)
        if X.shape[0] == 0:
            return self._decode_predictions(np.empty(0, dtype=np.float64))
        return self._decode_predictions(self.estimator.predict(X))

    def iter_predict(
        self,
        rows: Table,
        repository: DataRepository | RepositorySnapshot | None = None,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        executor: str | JoinExecutor = "serial",
        n_jobs: int | None = None,
    ):
        """Stream predictions over micro-batches (see :meth:`iter_transform`)."""
        for X in self.iter_transform(
            rows,
            repository=repository,
            batch_rows=batch_rows,
            executor=executor,
            n_jobs=n_jobs,
        ):
            if X.shape[0] == 0:
                yield self._decode_predictions(np.empty(0, dtype=np.float64))
            else:
                yield self._decode_predictions(self.estimator.predict(X))

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise to one artifact file (atomic write).

        The artifact holds a JSON header (join plan, schemas, encoder
        decisions, provenance, estimator hyper-parameters) plus binary pages
        for every array (imputation codes, frequency tables, tree nodes).
        """
        arrays: dict[str, np.ndarray] = {}
        imputer_docs = []
        for i, state in enumerate(self.imputer.columns):
            doc = {"name": state.name, "kind": state.kind}
            if state.kind == "categorical":
                doc["dictionary"] = [str(v) for v in state.dictionary]
                arrays[f"imputer/{i}/observed"] = np.asarray(
                    state.observed_codes, dtype=np.int32
                )
            else:
                doc["fill"] = state.fill
            imputer_docs.append(doc)
        encoder_docs = []
        for i, state in enumerate(self.encoder.columns):
            doc = {
                "name": state.name,
                "kind": state.kind,
                "feature_names": state.feature_names,
            }
            if state.kind == "onehot":
                doc["categories"] = [str(c) for c in state.categories]
            elif state.kind == "frequency":
                doc["frequency_values"] = [str(v) for v in state.frequency_values]
                arrays[f"encoder/{i}/frequencies"] = np.asarray(
                    state.frequencies, dtype=np.float64
                )
            encoder_docs.append(doc)
        estimator_doc, estimator_arrays = estimator_to_state(self.estimator)
        for key, value in estimator_arrays.items():
            arrays[f"estimator/{key}"] = value

        doc = {
            "target": self.target,
            "task": self.task,
            "seed": self.seed,
            "soft_strategy": self.soft_strategy,
            "time_resample": self.time_resample,
            "base_schema": [[name, ctype] for name, ctype in self.base_schema],
            "target_categories": self.target_categories,
            "joins": [step.to_doc() for step in self.joins],
            "imputer": {"seed": self.imputer.seed, "columns": imputer_docs},
            "encoder": {
                "max_categories": self.encoder.max_categories,
                "columns": encoder_docs,
            },
            "provenance": [p.to_doc() for p in self.provenance],
            "estimator": estimator_doc,
            "metadata": self.metadata,
        }
        write_artifact(path, doc, arrays)

    @classmethod
    def load(
        cls, path: str | Path, repository: DataRepository | RepositorySnapshot | None = None
    ) -> "FittedPipeline":
        """Restore a pipeline saved by :meth:`save`.

        Raises :class:`~repro.serving.artifact.ArtifactError` on a version
        mismatch or corrupt file.  Passing ``repository`` binds and validates
        it immediately (fingerprint check); otherwise call :meth:`bind` (or
        pass a repository to the first transform/predict) before serving a
        pipeline that replays joins.
        """
        doc, arrays = read_artifact(path)
        imputer_states = []
        for i, col_doc in enumerate(doc["imputer"]["columns"]):
            if col_doc["kind"] == "categorical":
                imputer_states.append(
                    ColumnImputeState(
                        name=col_doc["name"],
                        kind="categorical",
                        observed_codes=np.asarray(
                            arrays[f"imputer/{i}/observed"], dtype=np.int32
                        ),
                        dictionary=np.array(col_doc["dictionary"], dtype=object),
                    )
                )
            else:
                imputer_states.append(
                    ColumnImputeState(
                        name=col_doc["name"], kind="numeric", fill=float(col_doc["fill"])
                    )
                )
        imputer = FittedImputer(imputer_states, seed=doc["imputer"]["seed"])
        encoder_states = []
        for i, col_doc in enumerate(doc["encoder"]["columns"]):
            state = ColumnEncoderState(
                name=col_doc["name"],
                kind=col_doc["kind"],
                feature_names=list(col_doc["feature_names"]),
            )
            if state.kind == "onehot":
                state.categories = list(col_doc["categories"])
            elif state.kind == "frequency":
                state.frequency_values = list(col_doc["frequency_values"])
                state.frequencies = np.asarray(
                    arrays[f"encoder/{i}/frequencies"], dtype=np.float64
                )
            encoder_states.append(state)
        encoder = FittedEncoder(
            encoder_states, max_categories=doc["encoder"]["max_categories"]
        )
        estimator_arrays = {
            key[len("estimator/"):]: value
            for key, value in arrays.items()
            if key.startswith("estimator/")
        }
        estimator = estimator_from_state(doc["estimator"], estimator_arrays)
        pipeline = cls(
            target=doc["target"],
            task=doc["task"],
            seed=doc["seed"],
            soft_strategy=doc["soft_strategy"],
            time_resample=doc["time_resample"],
            base_schema=[tuple(entry) for entry in doc["base_schema"]],
            joins=[JoinStep.from_doc(step) for step in doc["joins"]],
            imputer=imputer,
            encoder=encoder,
            estimator=estimator,
            target_categories=doc.get("target_categories"),
            provenance=[FeatureProvenance.from_doc(p) for p in doc.get("provenance", [])],
            metadata=doc.get("metadata", {}),
        )
        if repository is not None:
            pipeline.bind(repository)
        return pipeline

    def __repr__(self) -> str:
        return (
            f"FittedPipeline(target={self.target!r}, task={self.task!r}, "
            f"joins={len(self.joins)}, features={len(self.feature_names)}, "
            f"estimator={type(self.estimator).__name__})"
        )


def fit_pipeline_from_training(
    *,
    target: str,
    task: str,
    base_table: Table,
    augmented_table: Table,
    kept_specs: list[tuple[JoinCandidate, list[int], list[str]]],
    repository: DataRepository,
    estimator,
    seed: int,
    soft_strategy: str,
    time_resample: bool,
    max_categories: int,
    batch_of_spec: dict[int, int] | None = None,
    metadata: dict | None = None,
) -> tuple[FittedPipeline, np.ndarray, np.ndarray]:
    """Capture a :class:`FittedPipeline` at the end of an ARDA run.

    Fits the imputer and encoder on the augmented training table (producing
    the training design matrix through the same kernels serving will use),
    trains ``estimator`` on the full matrix, fingerprints the kept foreign
    tables, and assembles the pipeline.  Returns
    ``(pipeline, X_train, y_train)`` so the caller can score without
    re-encoding.
    """
    from repro.relational.encoding import encode_target

    imputer, imputed = FittedImputer.fit(augmented_table, seed=seed)
    encoder, encoded = FittedEncoder.fit(
        imputed, exclude=[target], max_categories=max_categories
    )
    target_col = imputed.column(target)
    y = encode_target(target_col)
    target_categories = (
        sorted(target_col.unique()) if target_col.ctype is CATEGORICAL else None
    )
    if encoded.matrix.shape[1] == 0:
        # a featureless pipeline could never predict; fail here with a clear
        # message instead of letting save()/predict() crash on an unfitted
        # estimator (ARDA skips capture for this case)
        raise ValueError(
            "cannot capture a serving pipeline: the augmented table has no "
            "feature columns besides the target"
        )
    estimator.fit(encoded.matrix, y)

    joins: list[JoinStep] = []
    provenance: list[FeatureProvenance] = []
    batch_of_spec = batch_of_spec or {}
    for index, (candidate, positions, names) in enumerate(kept_specs):
        try:
            fingerprint = repository.header(candidate.foreign_table).fingerprint
        except KeyError:
            fingerprint = table_fingerprint(repository.get(candidate.foreign_table))
        joins.append(
            JoinStep(
                foreign_table=candidate.foreign_table,
                fingerprint=fingerprint,
                keys=[(k.base_column, k.foreign_column, k.soft) for k in candidate.keys],
                positions=positions,
                column_names=names,
            )
        )
        provenance.extend(
            FeatureProvenance(
                column=name,
                table=candidate.foreign_table,
                position=position,
                batch_index=batch_of_spec.get(index, -1),
            )
            for position, name in zip(positions, names)
        )

    metadata = dict(metadata or {})
    metadata.setdefault("python", sys.version.split()[0])
    pipeline = FittedPipeline(
        target=target,
        task=task,
        seed=seed,
        soft_strategy=soft_strategy,
        time_resample=time_resample,
        base_schema=[(col.name, col.ctype.value) for col in base_table.columns()],
        joins=joins,
        imputer=imputer,
        encoder=encoder,
        estimator=estimator,
        target_categories=target_categories,
        provenance=provenance,
        metadata=metadata,
    )
    # the training repository (or the pinned snapshot ARDA ran against) is
    # already the validated view — keep it without re-pinning
    pipeline._repository = repository
    pipeline._bound_source = repository
    return pipeline, encoded.matrix, y


__all__ = [
    "DEFAULT_BATCH_ROWS",
    "FittedPipeline",
    "JoinStep",
    "fit_pipeline_from_training",
]
