"""Serving: persistable fitted pipelines and batch/streaming inference.

``ARDA.augment`` learns a join plan, encoders, imputation statistics, a
selected-feature set and a trained estimator; this package packages all of it
as a single versioned artifact (:class:`FittedPipeline`) that can be saved,
loaded in a fresh process, validated against a repository by content
fingerprint, and used to transform/predict on unseen base rows without ever
re-running discovery or feature selection.  ``python -m repro.serve`` is the
command-line front end for artifact inspection and batch scoring.
"""

from repro.serving.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    read_artifact,
    read_artifact_header,
    write_artifact,
)
from repro.serving.pipeline import (
    DEFAULT_BATCH_ROWS,
    FittedPipeline,
    JoinStep,
    fit_pipeline_from_training,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "DEFAULT_BATCH_ROWS",
    "FittedPipeline",
    "JoinStep",
    "fit_pipeline_from_training",
    "read_artifact",
    "read_artifact_header",
    "write_artifact",
]
