"""Serving: persistable fitted pipelines and batch/streaming inference.

``ARDA.augment`` learns a join plan, encoders, imputation statistics, a
selected-feature set and a trained estimator; this package packages all of it
as a single versioned artifact (:class:`FittedPipeline`) that can be saved,
loaded in a fresh process, validated against a repository by content
fingerprint, and used to transform/predict on unseen base rows without ever
re-running discovery or feature selection.  :class:`PredictionServer` keeps a
loaded pipeline resident behind an HTTP endpoint with micro-batching and hot
artifact reload; ``python -m repro`` is the command-line front end for
artifact inspection, batch scoring and running the server.
"""

from repro.serving.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    read_artifact,
    read_artifact_header,
    write_artifact,
)
from repro.serving.codec import (
    RequestError,
    parse_predict_payload,
    predictions_to_payload,
    rows_to_table,
)
from repro.serving.pipeline import (
    DEFAULT_BATCH_ROWS,
    FittedPipeline,
    JoinStep,
    fit_pipeline_from_training,
)
from repro.serving.server import PredictionServer

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "DEFAULT_BATCH_ROWS",
    "FittedPipeline",
    "JoinStep",
    "PredictionServer",
    "RequestError",
    "fit_pipeline_from_training",
    "parse_predict_payload",
    "predictions_to_payload",
    "read_artifact",
    "read_artifact_header",
    "rows_to_table",
    "write_artifact",
]
