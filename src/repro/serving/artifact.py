"""The serving-artifact container: one versioned file of JSON doc + array pages.

A ``.pipeline`` artifact reuses the layout idiom of the table persistence
format (:mod:`repro.relational.persist`): a small magic/version prefix, a JSON
header, then 64-byte-aligned binary pages — here one page per named numpy
array (estimator node arrays, fitted imputation codes, frequency tables).
The JSON header carries the pipeline document plus, per page, its name,
extent, dtype and shape, so ``inspect`` tooling can describe an artifact
without touching a page.

Writes are atomic (uniquely-named temp sibling + ``os.replace``, shared with
the table format via :func:`repro.relational.persist.atomic_replace`).
Reading an artifact written by a different format version raises
:class:`ArtifactError` — serving must fail loudly rather than mis-replay a
pipeline whose on-disk layout it does not understand.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.relational.persist import atomic_replace

MAGIC = b"RPROPIPA"
ARTIFACT_VERSION = 1
_ALIGN = 64
_PREFIX_LEN = len(MAGIC) + 8  # magic + uint32 version + uint32 header length
_FORMAT = "arda-fitted-pipeline"

# dtypes allowed in pages; anything else (notably object arrays) must be
# encoded into the JSON doc by the caller
_ALLOWED_DTYPES = {"<f8", "<i8", "<i4", "|u1"}


class ArtifactError(ValueError):
    """A pipeline artifact is unreadable: bad magic, wrong version, truncation."""


def _align(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def write_artifact(path: str | Path, doc: dict, arrays: dict[str, np.ndarray]) -> None:
    """Write ``doc`` plus named ``arrays`` to ``path`` atomically.

    ``doc`` must be JSON-serialisable; array dtypes are normalised to the
    little-endian on-disk forms (float64 / int64 / int32 / uint8).
    """
    path = Path(path)
    pages: list[bytes] = []
    page_docs: list[dict] = []
    rel = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        dtype = array.dtype.newbyteorder("<").str
        if dtype == "|i1":
            dtype = "|u1"
        if dtype not in _ALLOWED_DTYPES:
            raise TypeError(
                f"page {name!r} has unsupported dtype {array.dtype}; "
                f"allowed: {sorted(_ALLOWED_DTYPES)}"
            )
        payload = array.astype(dtype, copy=False).tobytes()
        page_docs.append(
            {
                "name": name,
                "offset": rel,
                "nbytes": len(payload),
                "dtype": dtype,
                "shape": list(array.shape),
            }
        )
        pages.append(payload)
        rel += len(payload)
        pad = _align(rel) - rel
        if pad:
            pages.append(b"\x00" * pad)
            rel += pad

    header_doc = {"format": _FORMAT, "version": ARTIFACT_VERSION, "doc": doc, "pages": page_docs}
    header_bytes = json.dumps(header_doc, separators=(",", ":")).encode("utf-8")
    pages_start = _align(_PREFIX_LEN + len(header_bytes))

    def write_to(handle):
        handle.write(MAGIC)
        handle.write(ARTIFACT_VERSION.to_bytes(4, "little"))
        handle.write(len(header_bytes).to_bytes(4, "little"))
        handle.write(header_bytes)
        handle.write(b"\x00" * (pages_start - _PREFIX_LEN - len(header_bytes)))
        for payload in pages:
            handle.write(payload)

    atomic_replace(path, write_to)


def read_artifact_header(path: str | Path) -> dict:
    """Read and validate only the JSON header of an artifact.

    Returns the full header document (``doc`` + ``pages`` metadata) without
    touching any page — the cost of ``python -m repro.serve inspect``.
    """
    path = Path(path)
    with path.open("rb") as handle:
        prefix = handle.read(_PREFIX_LEN)
        if len(prefix) < _PREFIX_LEN or prefix[: len(MAGIC)] != MAGIC:
            raise ArtifactError(f"{path}: not a pipeline artifact (bad magic)")
        version = int.from_bytes(prefix[len(MAGIC) : len(MAGIC) + 4], "little")
        if version != ARTIFACT_VERSION:
            raise ArtifactError(
                f"{path}: unsupported artifact version {version} "
                f"(this build reads version {ARTIFACT_VERSION})"
            )
        header_len = int.from_bytes(prefix[len(MAGIC) + 4 :], "little")
        header_bytes = handle.read(header_len)
    if len(header_bytes) < header_len:
        raise ArtifactError(f"{path}: truncated header")
    try:
        header = json.loads(header_bytes)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: corrupt header JSON: {exc}") from None
    if header.get("format") != _FORMAT:
        raise ArtifactError(f"{path}: not a {_FORMAT} artifact")
    header["_pages_start"] = _align(_PREFIX_LEN + header_len)
    return header


def read_artifact(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Load an artifact written by :func:`write_artifact`.

    Returns ``(doc, arrays)``; every page is validated against the file size
    before it is read, so a truncated artifact raises :class:`ArtifactError`
    instead of returning short arrays.
    """
    path = Path(path)
    header = read_artifact_header(path)
    pages_start = header["_pages_start"]
    file_size = path.stat().st_size
    arrays: dict[str, np.ndarray] = {}
    with path.open("rb") as handle:
        for page in header["pages"]:
            start = pages_start + page["offset"]
            if start + page["nbytes"] > file_size:
                raise ArtifactError(
                    f"{path}: truncated page {page['name']!r} "
                    f"({file_size} bytes, page ends at {start + page['nbytes']})"
                )
            handle.seek(start)
            raw = handle.read(page["nbytes"])
            if len(raw) < page["nbytes"]:
                raise ArtifactError(f"{path}: truncated page {page['name']!r}")
            array = np.frombuffer(bytearray(raw), dtype=np.dtype(page["dtype"]))
            arrays[page["name"]] = array.reshape(page["shape"])
    return header["doc"], arrays
