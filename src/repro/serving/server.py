"""Resident serving server: micro-batching, hot reload, metrics.

:class:`PredictionServer` keeps one :class:`~repro.serving.pipeline.
FittedPipeline` resident — artifact memory-mapped, repository snapshot pinned
and pre-touched — behind a small stdlib HTTP front end, so scoring a row
costs a dictionary-to-column decode and a forest walk instead of a process
start and an artifact load.

Architecture (one process, threads only):

* **admission** — HTTP handler threads (one per connection,
  ``ThreadingHTTPServer``) validate request shape, enqueue a ``_Job`` on a
  bounded queue and block on the job's event.  A full queue answers 503
  immediately: backpressure beats unbounded latency.
* **scoring** — ``workers`` scorer threads pull from the queue.  A worker
  takes the first job blocking, then coalesces more until the batch reaches
  ``max_batch_rows`` rows or ``max_wait_ms`` passes, decodes *all* coalesced
  rows into one table, predicts once, and splits the vector back per job by
  row offsets.  Single-row requests arriving together therefore pay one join
  replay and one estimator dispatch.  If the merged batch fails, each job is
  re-scored alone so one malformed request cannot fail its batch-mates.
* **generations** — the live pipeline is wrapped in a ``_Generation`` with an
  in-flight refcount.  A hot reload loads + binds + warms the *new* pipeline
  completely before swapping the pointer; the old generation is retired and
  its snapshot released only when its last in-flight batch finishes.  Requests
  never observe a half-swapped pipeline and never fail because of a swap.
* **watcher** — an optional thread re-checks the artifact's content
  fingerprint and the repository manifest generation every
  ``reload_interval_s`` and triggers :meth:`PredictionServer.check_reload`.
  A failed reload (torn write, drifted fingerprint) keeps the old generation
  serving and counts ``server.reload_failures``.

Byte-identity: a served prediction equals ``FittedPipeline.predict`` on the
same rows offline — the server runs the very same decode/join/encode/predict
kernels.  The one caveat is inherited from the pipeline (see its module
docstring): serve-time random draws restart per transform call, so rows with
*missing categorical values* may impute differently depending on which rows
they were coalesced with.  Complete rows are byte-identical under any
batching.

Shutdown drains: :meth:`PredictionServer.close` stops accepting, waits (up
to ``drain_timeout_s``) for admitted requests to finish, then stops workers
and the watcher and releases the pinned snapshot.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.config import ServingConfig
from repro.discovery.repository import DataRepository, RepositorySnapshot
from repro.observability import MetricsRegistry, get_registry
from repro.serving.codec import (
    RequestError,
    parse_predict_payload,
    predictions_to_payload,
    rows_to_table,
)
from repro.serving.pipeline import FittedPipeline

__all__ = ["PredictionServer"]

_STOP = object()

# batch-size histogram buckets: powers of two up to the default batch cap
_BATCH_BUCKETS = tuple(float(2**i) for i in range(0, 11))


def _artifact_fingerprint(path: Path) -> str:
    """Content hash of the artifact file (what "the artifact changed" means)."""
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            digest.update(chunk)
    return digest.hexdigest()


class _Job:
    """One admitted predict request, waiting on a scorer worker."""

    __slots__ = ("rows", "event", "predictions", "error", "generation")

    def __init__(self, rows: list[dict]):
        self.rows = rows
        self.event = threading.Event()
        self.predictions: list | None = None
        self.error: tuple[int, str] | None = None  # (http status, message)
        self.generation: int = -1

    @property
    def count(self) -> int:
        return len(self.rows)


class _Generation:
    """One immutable serving pipeline plus its lifetime accounting.

    ``inflight``/``retired`` are guarded by the server's generation lock; the
    pipeline's pinned snapshot is released exactly once, when the generation
    is retired *and* its last in-flight batch has finished.
    """

    __slots__ = ("pipeline", "artifact_fingerprint", "repo_generation", "index",
                 "inflight", "retired")

    def __init__(
        self,
        pipeline: FittedPipeline,
        artifact_fingerprint: str,
        repo_generation: int | None,
        index: int,
    ):
        self.pipeline = pipeline
        self.artifact_fingerprint = artifact_fingerprint
        self.repo_generation = repo_generation
        self.index = index
        self.inflight = 0
        self.retired = False


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP front end; all logic lives on the owning server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics registry's job

    @property
    def owner(self) -> "PredictionServer":
        return self.server.owner

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.owner._draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        owner = self.owner
        if self.path == "/healthz":
            if owner._draining:
                self._respond(503, {"status": "draining"})
            else:
                self._respond(
                    200, {"status": "ok", "generation": owner.generation}
                )
        elif self.path == "/metrics":
            self._respond(200, owner.registry.snapshot())
        else:
            self._respond(404, {"error": f"no such endpoint: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/predict":
            self._respond(404, {"error": f"no such endpoint: {self.path}"})
            return
        started = time.monotonic()
        status, payload = self.owner._handle_predict(self._read_body())
        self.owner.registry.histogram("server.request_s").observe(
            time.monotonic() - started
        )
        if status >= 500:
            self.owner.registry.counter("server.responses_5xx").inc()
        elif status >= 400:
            self.owner.registry.counter("server.responses_4xx").inc()
        self._respond(status, payload)

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        if length is None:
            return b""
        return self.rfile.read(int(length))


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # rebinding the benchmark/test port immediately after a previous server
    allow_reuse_address = True
    # the stdlib default accept backlog of 5 makes a burst of >5 simultaneous
    # connections overflow the listen queue; the kernel then drops the SYN and
    # the client retries after a full second, which shows up as a ~1s p99 under
    # 16 concurrent clients
    request_queue_size = 128

    def __init__(self, address, handler, owner: "PredictionServer"):
        self.owner = owner
        super().__init__(address, handler)


class PredictionServer:
    """A resident micro-batching prediction server for one fitted artifact.

    Parameters
    ----------
    artifact:
        Path to a ``FittedPipeline.save`` artifact.  The file is watched for
        content changes (hot reload) while the server runs.
    repository:
        What the fitted joins replay against: a directory path (opened as a
        disk-backed :class:`~repro.discovery.repository.DataRepository`), a
        live repository, or ``None`` for join-free pipelines.  A live
        repository is snapshot-pinned per generation and its manifest is
        watched for new generations.
    config:
        A :class:`~repro.core.config.ServingConfig`; defaults apply when
        omitted.
    registry:
        Metrics registry to record into; the process-wide default when
        omitted.  ``/metrics`` serves this registry's snapshot.

    Usage::

        with PredictionServer("model.pipeline", repository="lake/",
                              config=ServingConfig(port=0)) as server:
            host, port = server.address
            ...

    ``start`` binds the socket, loads + binds + warms the pipeline, and spins
    up workers, the HTTP thread and the watcher; ``close`` drains and stops
    everything.  All endpoints speak JSON; see ``docs/ARCHITECTURE.md`` for
    the endpoint table and lifecycle details.
    """

    def __init__(
        self,
        artifact: str | Path,
        repository: DataRepository | str | Path | None = None,
        config: ServingConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.artifact_path = Path(artifact)
        self.config = config if config is not None else ServingConfig()
        self.registry = registry if registry is not None else get_registry()
        if isinstance(repository, (str, Path)):
            repository = DataRepository.open(repository)
            self._owns_repository = True
        else:
            self._owns_repository = False
        if isinstance(repository, RepositorySnapshot):
            raise TypeError(
                "PredictionServer hot-reloads across manifest generations and "
                "needs the live DataRepository, not a pinned snapshot"
            )
        self.repository = repository
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_depth)
        self._workers: list[threading.Thread] = []
        self._watcher: threading.Thread | None = None
        self._watcher_stop = threading.Event()
        self._http: _HTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._live: _Generation | None = None
        self._gen_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._inflight_requests = 0
        self._inflight_lock = threading.Lock()
        self._inflight_zero = threading.Condition(self._inflight_lock)
        self._draining = False
        self._started = False
        self.registry.register_source("server.state", self._state)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "PredictionServer":
        """Bind, load the artifact, and start workers + HTTP + watcher."""
        if self._started:
            raise RuntimeError("server already started")
        self._live = self._load_generation(index=0)
        self._http = _HTTPServer(
            (self.config.host, self.config.port), _Handler, owner=self
        )
        for i in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"scorer-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._http_thread = threading.Thread(
            target=self._http.serve_forever, name="http", daemon=True
        )
        self._http_thread.start()
        if self.config.reload_interval_s > 0:
            self._watcher = threading.Thread(
                target=self._watch_loop, name="reload-watcher", daemon=True
            )
            self._watcher.start()
        self._started = True
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` to the real one."""
        if self._http is None:
            raise RuntimeError("server not started")
        return self._http.server_address[0], self._http.server_address[1]

    @property
    def generation(self) -> int:
        """Swap index of the live pipeline generation (0 = initial load)."""
        with self._gen_lock:
            return self._live.index if self._live is not None else -1

    def __enter__(self) -> "PredictionServer":
        return self if self._started else self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: drain admitted requests, then stop everything.

        Ordering: stop accepting (new predicts answer 503) → wait up to
        ``drain_timeout_s`` for every admitted request to get its response →
        stop scorer workers and the watcher → close the socket → retire the
        live generation (releasing its snapshot once in-flight hits zero).
        Idempotent.
        """
        self._draining = True
        if self._http is not None:
            self._http.shutdown()
        with self._inflight_zero:
            self._inflight_zero.wait_for(
                lambda: self._inflight_requests == 0,
                timeout=self.config.drain_timeout_s,
            )
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=self.config.drain_timeout_s)
        self._workers = []
        self._watcher_stop.set()
        if self._watcher is not None:
            self._watcher.join(timeout=self.config.drain_timeout_s)
            self._watcher = None
        if self._http is not None:
            self._http.server_close()
            self._http = None
        with self._gen_lock:
            live, self._live = self._live, None
        if live is not None:
            self._retire(live)
        self.registry.unregister_source("server.state")

    # -- generations and hot reload --------------------------------------------

    def _load_generation(self, index: int) -> _Generation:
        """Load + bind + warm a fresh pipeline; only then is it swappable."""
        fingerprint = _artifact_fingerprint(self.artifact_path)
        pipeline = FittedPipeline.load(self.artifact_path)
        repo_generation = None
        if self.repository is not None:
            pipeline.bind(self.repository)
            # pre-touch every join table so this generation keeps serving even
            # if an external writer garbage-collects superseded files (a pin
            # only protects files this process has already opened)
            pipeline.warm()
            repo_generation = self.repository.generation
        elif pipeline.joins:
            raise ValueError(
                "this pipeline replays joins; PredictionServer needs "
                "repository=... to serve it"
            )
        return _Generation(pipeline, fingerprint, repo_generation, index)

    def check_reload(self) -> bool:
        """Reload the pipeline if the artifact or repository changed.

        Compares the artifact's content fingerprint and (for a disk-backed
        repository) the manifest generation after
        :meth:`~repro.discovery.repository.DataRepository.reload`.  On
        change, the new generation is fully constructed — loaded, fingerprint
        -validated against the repository, warmed — *before* the live pointer
        swaps, and the old generation keeps scoring its in-flight batches to
        completion.  Any failure (torn artifact write, drifted table) leaves
        the old generation serving and increments ``server.reload_failures``.
        Returns whether a swap happened.  Thread-safe; the watcher calls this
        periodically, tests may call it directly.
        """
        with self._reload_lock:
            live = self._live
            if live is None:
                return False
            try:
                if self.repository is not None and self.repository.is_disk_backed:
                    self.repository.reload()
                fingerprint = _artifact_fingerprint(self.artifact_path)
                repo_generation = (
                    self.repository.generation if self.repository is not None else None
                )
                if (
                    fingerprint == live.artifact_fingerprint
                    and repo_generation == live.repo_generation
                ):
                    return False
                fresh = self._load_generation(index=live.index + 1)
            except Exception:
                self.registry.counter("server.reload_failures").inc()
                return False
            with self._gen_lock:
                self._live = fresh
            self._retire(live)
            self.registry.counter("server.reloads").inc()
            return True

    def _watch_loop(self) -> None:
        while not self._watcher_stop.wait(self.config.reload_interval_s):
            self.check_reload()

    def _acquire_generation(self) -> _Generation:
        with self._gen_lock:
            generation = self._live
            generation.inflight += 1
            return generation

    def _release_generation(self, generation: _Generation) -> None:
        with self._gen_lock:
            generation.inflight -= 1
            done = generation.retired and generation.inflight == 0
        if done:
            generation.pipeline.release()

    def _retire(self, generation: _Generation) -> None:
        with self._gen_lock:
            generation.retired = True
            done = generation.inflight == 0
        if done:
            generation.pipeline.release()

    # -- admission -------------------------------------------------------------

    def _state(self) -> dict:
        """Pull-based ``server.state`` metrics source."""
        return {
            "generation": self.generation,
            "queue_len": self._queue.qsize(),
            "inflight_requests": self._inflight_requests,
            "workers": len(self._workers),
            "draining": self._draining,
        }

    def _handle_predict(self, body: bytes) -> tuple[int, dict]:
        """Admit one predict request and wait for its result."""
        self.registry.counter("server.requests").inc()
        if self._draining:
            return 503, {"error": "server is draining"}
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        try:
            rows, single = parse_predict_payload(payload)
        except RequestError as exc:
            return 400, {"error": str(exc)}
        if len(rows) > self.config.max_request_rows:
            return 413, {
                "error": (
                    f"{len(rows)} rows exceed max_request_rows="
                    f"{self.config.max_request_rows}; use the batch `score` "
                    f"CLI for bulk scoring"
                )
            }
        with self._gen_lock:
            live = self._live
        if live is None:
            return 503, {"error": "server is draining"}
        # reject rows missing fitted base columns here, so an incomplete
        # request cannot ride a coalesced batch into silent imputation —
        # offline predict on these rows alone would raise the same complaint
        required = live.pipeline.required_columns
        missing = [
            name for name in required if not any(name in row for row in rows)
        ]
        if missing:
            return 400, {"error": f"serving rows are missing base columns: {missing}"}
        job = _Job(rows)
        with self._inflight_lock:
            self._inflight_requests += 1
        try:
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                return 503, {"error": "admission queue is full; retry later"}
            if not job.event.wait(timeout=self.config.drain_timeout_s):
                return 504, {"error": "prediction timed out in the queue"}
        finally:
            with self._inflight_zero:
                self._inflight_requests -= 1
                self._inflight_zero.notify_all()
        if job.error is not None:
            status, message = job.error
            return status, {"error": message}
        self.registry.counter("server.rows").inc(len(rows))
        result: dict = {"generation": job.generation}
        if single:
            result["prediction"] = job.predictions[0]
        else:
            result["predictions"] = job.predictions
        return 200, result

    # -- scoring ---------------------------------------------------------------

    def _worker_loop(self) -> None:
        config = self.config
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            jobs = [job]
            rows = job.count
            deadline = time.monotonic() + config.max_wait_ms / 1000.0
            stop_seen = False
            while rows < config.max_batch_rows:
                remaining = deadline - time.monotonic()
                try:
                    nxt = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop_seen = True
                    break
                jobs.append(nxt)
                rows += nxt.count
            self._score_jobs(jobs)
            if stop_seen:
                return

    def _predict_rows(self, pipeline: FittedPipeline, rows: list[dict]) -> list:
        table = rows_to_table(rows, pipeline.base_schema)
        predictions = pipeline.predict(
            table, executor=self.config.executor, n_jobs=self.config.n_jobs
        )
        return predictions_to_payload(predictions)

    def _score_jobs(self, jobs: list[_Job]) -> None:
        """Score one coalesced micro-batch; fall back per-job on failure."""
        generation = self._acquire_generation()
        try:
            self.registry.counter("server.batches").inc()
            self.registry.histogram("server.batch_rows", buckets=_BATCH_BUCKETS).observe(
                float(sum(job.count for job in jobs))
            )
            started = time.monotonic()
            try:
                merged = [row for job in jobs for row in job.rows]
                payload = self._predict_rows(generation.pipeline, merged)
                offset = 0
                for job in jobs:
                    job.predictions = payload[offset:offset + job.count]
                    job.generation = generation.index
                    offset += job.count
            except Exception:
                # one bad request must not fail its batch-mates: retry each
                # job alone so errors land only on their own request
                for job in jobs:
                    try:
                        job.predictions = self._predict_rows(
                            generation.pipeline, job.rows
                        )
                        job.generation = generation.index
                    except (RequestError, KeyError, TypeError, ValueError) as exc:
                        message = exc.args[0] if exc.args else str(exc)
                        job.error = (400, str(message))
                    except Exception as exc:  # pragma: no cover - defensive
                        job.error = (500, f"{type(exc).__name__}: {exc}")
            self.registry.histogram("server.batch_s").observe(
                time.monotonic() - started
            )
        finally:
            self._release_generation(generation)
            for job in jobs:
                job.event.set()
