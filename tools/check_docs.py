"""Docs gate: link-check, API-coverage check and README snippet runner.

Run from the repository root (CI's ``docs`` job, or locally with
``PYTHONPATH=src python tools/check_docs.py``).  Three checks, all of which
must pass:

1. **Links** — every markdown link in ``README.md``, ``docs/*.md`` and
   ``benchmarks/README.md`` resolves: relative file targets exist, internal
   ``#anchors`` (GitHub heading slugs) exist in the target file.  External
   ``http(s)`` links are skipped (no network in CI).
2. **API coverage** — every name exported from the subsystem
   ``__init__.py`` files (``relational``, ``discovery``, ``core``, ``ml``,
   ``selection``, ``serving``, ``observability``, ``datasets`` and
   ``datasets.sqlgen``) appears in ``docs/API.md`` as a backticked code
   token, so the reference cannot silently fall behind the code.
3. **README snippets** — every fenced ```` ```python ```` block in
   ``README.md`` is executed verbatim, in order, in one shared namespace
   inside a temporary working directory.  The quickstart cannot rot.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "benchmarks" / "README.md", *sorted(
    (ROOT / "docs").glob("*.md")
)]
API_REFERENCE = ROOT / "docs" / "API.md"
SUBSYSTEMS = [
    "repro.relational",
    "repro.discovery",
    "repro.core",
    "repro.ml",
    "repro.selection",
    "repro.serving",
    "repro.observability",
    "repro.datasets",
    "repro.datasets.sqlgen",
]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """Approximate GitHub's heading-to-anchor slug algorithm."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE).lower()
    slug = re.sub(r"\s", "-", text)
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    """All heading anchors of one markdown file (code fences skipped)."""
    if path in cache:
        return cache[path]
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    cache[path] = anchors
    return anchors


def check_links() -> list[str]:
    """Resolve every relative link and internal anchor in the doc files."""
    failures: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for doc in DOC_FILES:
        if not doc.exists():
            failures.append(f"{doc.relative_to(ROOT)}: file listed for checking is missing")
            continue
        in_fence = False
        for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in _LINK_RE.findall(line):
                where = f"{doc.relative_to(ROOT)}:{lineno}"
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    if target[1:] not in anchors_of(doc, anchor_cache):
                        failures.append(f"{where}: broken anchor {target}")
                    continue
                path_part, _, anchor = target.partition("#")
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    failures.append(f"{where}: broken link {target}")
                    continue
                if anchor:
                    if resolved.suffix != ".md":
                        failures.append(f"{where}: anchor on non-markdown target {target}")
                    elif anchor not in anchors_of(resolved, anchor_cache):
                        failures.append(f"{where}: broken anchor {target}")
    return failures


def check_api_coverage() -> list[str]:
    """Every subsystem ``__all__`` name must appear backticked in API.md."""
    import importlib

    if not API_REFERENCE.exists():
        return [f"{API_REFERENCE.relative_to(ROOT)} is missing"]
    content = API_REFERENCE.read_text(encoding="utf-8")
    failures: list[str] = []
    for module_name in SUBSYSTEMS:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if not exported:
            failures.append(f"{module_name}: no __all__ to check against")
            continue
        for name in exported:
            # the name must appear as its own backticked token (a prefix match
            # would let `read_artifact` ride on `read_artifact_header`);
            # `name(`-style signature tokens count too
            if f"`{name}`" not in content and f"`{name}(" not in content:
                failures.append(
                    f"docs/API.md does not document {module_name}.{name} "
                    f"(no backticked `{name}` token)"
                )
    return failures


def run_readme_snippets() -> list[str]:
    """Execute every ```python block of README.md in one shared namespace."""
    readme = ROOT / "README.md"
    blocks: list[tuple[int, str]] = []
    current: list[str] | None = None
    start_line = 0
    for lineno, line in enumerate(readme.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        if current is None and stripped.startswith("```python"):
            current, start_line = [], lineno
        elif current is not None and stripped.startswith("```"):
            blocks.append((start_line, "\n".join(current)))
            current = None
        elif current is not None:
            current.append(line)
    if not blocks:
        return ["README.md: no ```python blocks found — the quickstart must be runnable"]
    namespace: dict = {}
    failures: list[str] = []
    import contextlib
    import os

    with tempfile.TemporaryDirectory(prefix="readme_snippets_") as workdir:
        previous = os.getcwd()
        os.chdir(workdir)
        try:
            for start, source in blocks:
                print(f"  running README.md snippet at line {start} ({len(source)} chars)")
                try:
                    with contextlib.redirect_stdout(sys.stderr):
                        exec(compile(source, f"README.md:{start}", "exec"), namespace)
                except Exception as exc:  # report and stop: later blocks depend on earlier ones
                    failures.append(f"README.md snippet at line {start} failed: {exc!r}")
                    break
        finally:
            os.chdir(previous)
    return failures


def main() -> int:
    failures: list[str] = []
    print("checking links ...")
    failures += check_links()
    print("checking docs/API.md coverage of subsystem exports ...")
    failures += check_api_coverage()
    print("running README.md python snippets ...")
    failures += run_readme_snippets()
    if failures:
        print(f"\n{len(failures)} docs failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("docs ok: links resolve, API reference covers all exports, snippets run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
