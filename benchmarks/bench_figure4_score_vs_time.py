"""Figure 4: score (% change over the base table) versus feature-selection time.

Paper shape to reproduce: RIFS sits in the top-left region (high improvement,
moderate time); wrapper methods (forward selection) reach similar scores but at
an order of magnitude more time; filter methods are fast but weaker.
"""

from repro.evaluation.experiments import experiment_figure4_score_vs_time

from conftest import BENCH_RIFS, BENCH_SCALE, print_rows, run_once


def test_figure4_score_vs_time(benchmark):
    rows = run_once(
        benchmark,
        experiment_figure4_score_vs_time,
        datasets=("poverty", "school_s"),
        selectors=("RIFS", "random forest", "sparse regression", "f-test", "mutual info", "relief"),
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
    )
    print_rows("Figure 4: % score change vs selection time", rows)
    assert {row["method"] for row in rows} >= {"RIFS", "f-test"}
