"""Table 1: error / accuracy and selection time of every selector on the real-world datasets.

Paper shape to reproduce: augmentation (any sensible selector) beats the
baseline row; RIFS is at or near the best score per dataset; wrapper methods
cost far more time than ranking-based selectors.
"""

from repro.evaluation.experiments import experiment_table1_real_world

from conftest import BENCH_RIFS, BENCH_SCALE, print_rows, run_once


def test_table1_regression_datasets(benchmark):
    rows = run_once(
        benchmark,
        experiment_table1_real_world,
        datasets=("taxi", "poverty"),
        selectors=("RIFS", "random forest", "sparse regression", "f-test", "mutual info", "relief", "lasso"),
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
    )
    print_rows("Table 1 (regression datasets)", rows)
    assert any(row["method"] == "baseline" for row in rows)


def test_table1_classification_datasets(benchmark):
    rows = run_once(
        benchmark,
        experiment_table1_real_world,
        datasets=("school_s",),
        selectors=("RIFS", "random forest", "f-test", "mutual info", "linear svc", "logistic reg"),
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
    )
    print_rows("Table 1 (classification datasets)", rows)
    assert any(row["method"] == "RIFS" for row in rows)
