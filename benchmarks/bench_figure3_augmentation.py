"""Figure 3: achieved augmentation (% improvement over the base table) and wall time.

Paper shape to reproduce: ARDA improves every dataset over the base table; the
naive "all tables" join helps less (and can hurt); the TR rule alone sits
between the base table and ARDA; AutoML on the base table cannot close the gap
to augmented runs.
"""

from repro.evaluation.experiments import experiment_figure3_augmentation

from conftest import BENCH_RIFS, BENCH_SCALE, print_rows, run_once


def test_figure3_regression_and_classification(benchmark):
    rows = run_once(
        benchmark,
        experiment_figure3_augmentation,
        datasets=("poverty", "school_s"),
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
        include_automl=True,
        automl_budget=6.0,
    )
    print_rows("Figure 3: achieved augmentation (% improvement) and time", rows)
    assert any(row["method"] == "ARDA" for row in rows)
