"""Table 2: coreset strategies (stratified, sketch) vs uniform sampling on classification data.

Paper shape to reproduce: no strategy dominates — the deltas versus uniform
sampling are small and both positive and negative depending on dataset and
selector.
"""

from repro.evaluation.experiments import experiment_table2_coreset_classification

from conftest import BENCH_RIFS, BENCH_SCALE, print_rows, run_once


def test_table2_coreset_classification(benchmark):
    rows = run_once(
        benchmark,
        experiment_table2_coreset_classification,
        datasets=("school_s", "kraken"),
        selectors=("RIFS", "random forest", "f-test", "all features"),
        coreset_size=150,
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
    )
    print_rows("Table 2: coreset strategy accuracy change vs uniform (classification)", rows)
    assert {row["strategy"] for row in rows} == {"stratified", "sketch"}
