"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced but
structurally faithful scale (smaller synthetic datasets, fewer RIFS rounds,
the faster subset of selectors) so the full suite completes offline in
minutes.  Each benchmark prints the regenerated rows so the run log doubles as
the reproduction artifact referenced from EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_table

#: reduced-scale settings shared by all benchmarks
BENCH_SCALE = 0.2
BENCH_RIFS = {"n_rounds": 2}


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_rows(title: str, rows: list[dict]) -> None:
    """Print an experiment's rows as an aligned table."""
    print(f"\n=== {title} ===")
    print(format_table(rows))


@pytest.fixture
def bench_scale() -> float:
    """Dataset scale factor used by all benchmarks."""
    return BENCH_SCALE


@pytest.fixture
def bench_rifs() -> dict:
    """Reduced RIFS options used by all benchmarks."""
    return dict(BENCH_RIFS)
