"""Benchmarks for the histogram-binned training engine and parallel RIFS.

On a synthetic regression design matrix (default 200k rows x 100 features,
mixed continuous / low-cardinality / one-hot-like columns) this measures:

* **forest-exact vs forest-hist** — fitting the same random forest with the
  exact sorted split search vs the histogram kernel sharing one
  :class:`~repro.ml.binning.BinnedMatrix` across all trees.
* **rifs-exact-serial vs rifs-hist-serial vs rifs-hist-parallel** — the full
  RIFS procedure (injection rounds + ranking ensemble + threshold wrapper):
  the seed configuration (exact kernel, serial rounds) against the binned
  kernel, serial and fanned out over a thread pool.  The printed ``speedup``
  is end-to-end rifs-exact-serial / rifs-hist-parallel; the parallel term
  needs as many free cores as ``--n-jobs`` to contribute (the cpu count is
  recorded alongside the ratio).
* **--scores** — holdout-score parity of the two kernels on the synthetic
  scenario suite (the acceptance criterion is agreement within 1%).

Injection uses the "standard" strategy: moment-matched injection builds an
n x n covariance, which is the right default at coreset scale but is not
meaningful to benchmark at 200k rows.

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_selection.py --quick --json BENCH_selection.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ml.binning import BinnedMatrix
from repro.selection.base import REGRESSION, default_estimator, holdout_score
from repro.selection.rifs import RIFS


def build_matrix(rows: int, features: int, seed: int = 0):
    """A mixed-dtype regression design matrix with planted signal.

    One third continuous Gaussians, one third low-cardinality integers (the
    regime where binning is lossless), one third binary indicators (what
    one-hot encoded categoricals look like after encoding).
    """
    rng = np.random.default_rng(seed)
    X = np.empty((rows, features), dtype=np.float64)
    for j in range(features):
        kind = j % 3
        if kind == 0:
            X[:, j] = rng.normal(size=rows)
        elif kind == 1:
            X[:, j] = rng.integers(0, 12, size=rows)
        else:
            X[:, j] = rng.random(rows) < 0.3
    signal = [0, 1, 2, 3, 4]
    weights = rng.normal(size=len(signal)) + 1.0
    y = X[:, signal] @ weights + rng.normal(scale=0.5, size=rows)
    return X, y


def timed(fn, repeat: int = 1) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last return value."""
    best, value = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def make_rifs(
    tree_method: str, rounds: int, trees: int, executor: str, n_jobs, ensemble: bool = True
) -> RIFS:
    from repro.selection.rankers import RandomForestRanker, SparseRegressionRanker

    rankers = [RandomForestRanker(n_estimators=trees, tree_method=tree_method)]
    if ensemble:
        rankers.append(SparseRegressionRanker())
    return RIFS(
        n_rounds=rounds,
        injection_strategy="standard",
        rankers=rankers,
        random_state=0,
        tree_method=tree_method,
        executor=executor,
        n_jobs=n_jobs,
    )


def bench_scores(scale: float, n_seeds: int = 5) -> list[dict]:
    """Holdout-score parity of the kernels on the synthetic scenario suite.

    Scores are averaged over ``n_seeds`` estimator seeds so that single-draw
    jitter (which swings either way) is separated from a systematic kernel
    gap.  The acceptance criterion is the averaged gap staying within 1% of
    the score scale (|Δ| ≤ 0.01 on accuracy / R²).
    """
    from repro.datasets.scenarios import DATASET_NAMES, load_dataset
    from repro.relational.encoding import to_design_matrix
    from repro.relational.imputation import impute_table
    from repro.selection.base import infer_task

    rows = []
    print(f"\n{'scenario':<10} {'exact':>8} {'hist':>8} {'degraded':>9}")
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=scale)
        X, y, _ = to_design_matrix(
            impute_table(dataset.base_table, seed=0), dataset.target
        )
        task = dataset.task or infer_task(y)
        scores = {}
        for method in ("exact", "hist"):
            per_seed = [
                holdout_score(
                    X, y, task,
                    estimator=default_estimator(task, tree_method=method, random_state=seed),
                    random_state=seed,
                )
                for seed in range(n_seeds)
            ]
            scores[method] = float(np.mean(per_seed))
        degradation = max(0.0, scores["exact"] - scores["hist"])
        print(f"{name:<10} {scores['exact']:>8.4f} {scores['hist']:>8.4f} {degradation:>9.4f}")
        rows.append(
            {
                "bench": f"scores-{name}",
                "exact_score": scores["exact"],
                "hist_score": scores["hist"],
                "degradation": degradation,
            }
        )
    worst = max(r["degradation"] for r in rows)
    print(f"worst hist-vs-exact degradation: {worst:.4f} (criterion: <= 0.01)")
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--features", type=int, default=100)
    parser.add_argument("--rounds", type=int, default=3, help="RIFS injection rounds")
    parser.add_argument("--trees", type=int, default=10, help="ranker forest size")
    parser.add_argument("--n-jobs", type=int, default=4, help="parallel RIFS workers")
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke")
    parser.add_argument("--skip-exact-rifs", action="store_true",
                        help="skip the slow exact-serial RIFS baseline")
    parser.add_argument("--scores", action="store_true",
                        help="also run kernel score parity on the scenario suite")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()

    if args.quick:
        args.rows, args.features = min(args.rows, 8_000), min(args.features, 30)
        args.rounds, args.trees = min(args.rounds, 2), min(args.trees, 8)

    print(f"matrix: {args.rows} rows x {args.features} features")
    X, y = build_matrix(args.rows, args.features)
    results: list[dict] = []

    # -- forest kernels ---------------------------------------------------------
    forest_times = {}
    for method in ("exact", "hist"):
        estimator = default_estimator(REGRESSION, n_estimators=args.trees, tree_method=method)
        seconds, _ = timed(lambda e=estimator: e.fit(X, y))
        forest_times[method] = seconds
        results.append({"bench": f"forest-{method}", "seconds": seconds,
                        "rows": args.rows, "features": args.features, "trees": args.trees})
        print(f"forest-{method:<22} {seconds:>8.2f}s")
    print(f"forest hist speedup: {forest_times['exact'] / forest_times['hist']:.1f}x")

    # -- binning cost (paid once, shared by every tree and round) ---------------
    seconds, _ = timed(lambda: BinnedMatrix.from_matrix(X))
    results.append({"bench": "bin-matrix", "seconds": seconds,
                    "rows": args.rows, "features": args.features})
    print(f"{'bin-matrix':<29} {seconds:>8.2f}s")

    # -- RIFS end to end --------------------------------------------------------
    # "rifs" is the paper's full RF + Sparse-Regression ensemble; "rifs-rf" is
    # the single-ranker noise-injection variant (section 6.3), whose cost is
    # dominated by the forest and therefore shows the kernel speedup undiluted.
    rifs_times = {}
    configurations = [
        ("rifs-hist-serial", "hist", "serial", None, True),
        ("rifs-hist-parallel", "hist", "thread", args.n_jobs, True),
        ("rifs-rf-hist-serial", "hist", "serial", None, False),
        ("rifs-rf-hist-parallel", "hist", "thread", args.n_jobs, False),
    ]
    if not args.skip_exact_rifs:
        configurations.insert(0, ("rifs-exact-serial", "exact", "serial", None, True))
        configurations.insert(3, ("rifs-rf-exact-serial", "exact", "serial", None, False))
    for label, method, executor, n_jobs, ensemble in configurations:
        selector = make_rifs(method, args.rounds, args.trees, executor, n_jobs, ensemble)
        estimator = default_estimator(REGRESSION, n_estimators=args.trees, tree_method=method)
        seconds, result = timed(
            lambda s=selector, e=estimator: s.select(X, y, task=REGRESSION, estimator=e)
        )
        rifs_times[label] = seconds
        results.append({"bench": label, "seconds": seconds, "rounds": args.rounds,
                        "trees": args.trees, "selected": int(result.num_selected)})
        print(f"{label:<29} {seconds:>8.2f}s  ({result.num_selected} features selected)")
    for family, exact_label in (("rifs", "rifs-exact-serial"), ("rifs-rf", "rifs-rf-exact-serial")):
        if exact_label in rifs_times:
            speedup = rifs_times[exact_label] / rifs_times[f"{family}-hist-parallel"]
            results.append({"bench": f"{family}-speedup", "ratio": speedup,
                            "cpus": os.cpu_count()})
            print(
                f"end-to-end {family} speedup (hist + {args.n_jobs} jobs vs exact serial): "
                f"{speedup:.1f}x on {os.cpu_count()} cpu(s)"
            )

    if args.scores:
        results.extend(bench_scores(scale=0.5 if args.quick else 1.0))

    if args.json:
        args.json.write_text(json.dumps({"suite": "selection", "results": results}, indent=2))
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
