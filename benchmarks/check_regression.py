"""CI benchmark-regression gate.

Compares measured benchmark timings (the ``--json`` output of
``bench_columnar.py`` / ``bench_persistence.py``) against the committed
``benchmarks/baselines.json`` and fails if any kernel regressed more than the
allowed ratio:

    python benchmarks/check_regression.py --baseline benchmarks/baselines.json \
        BENCH_columnar.json BENCH_persistence.json

Rules:

* a kernel FAILS when ``measured > max_ratio * baseline`` **and**
  ``measured > min_seconds`` (sub-``min_seconds`` timings are too noisy on
  shared CI runners to gate on);
* a baseline kernel missing from the measurements FAILS (a silently dropped
  benchmark must not pass the gate);
* a measured kernel with no baseline only warns — commit a baseline entry for
  it to bring it under the gate.

Baselines are recorded from ``--quick`` runs with generous headroom; when a
deliberate change moves a kernel's cost, re-record with the printed value.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def measured_seconds(row: dict) -> float | None:
    """The gated timing of one result row (``seconds``, or ``new_s``)."""
    value = row.get("seconds", row.get("new_s"))
    return None if value is None else float(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("measurements", type=Path, nargs="+", help="BENCH_*.json files")
    parser.add_argument("--baseline", type=Path, required=True, help="baselines.json")
    args = parser.parse_args()

    baseline_doc = json.loads(args.baseline.read_text())
    baselines: dict[str, float] = baseline_doc["kernels"]
    max_ratio = float(baseline_doc.get("max_ratio", 2.0))
    min_seconds = float(baseline_doc.get("min_seconds", 0.05))

    measured: dict[str, float] = {}
    for path in args.measurements:
        doc = json.loads(path.read_text())
        suite = doc.get("suite", path.stem)
        for row in doc.get("results", []):
            seconds = measured_seconds(row)
            if seconds is not None:
                measured[f"{suite}/{row['bench']}"] = seconds

    failures: list[str] = []
    print(f"{'kernel':<28} {'measured':>10} {'baseline':>10} {'ratio':>7}")
    for kernel, baseline in sorted(baselines.items()):
        seconds = measured.get(kernel)
        if seconds is None:
            failures.append(f"{kernel}: present in baseline but not measured")
            print(f"{kernel:<28} {'MISSING':>10} {baseline * 1e3:>8.1f}ms {'-':>7}")
            continue
        ratio = seconds / baseline
        verdict = ""
        if ratio > max_ratio and seconds > min_seconds:
            failures.append(
                f"{kernel}: {seconds * 1e3:.1f}ms is {ratio:.2f}x the "
                f"{baseline * 1e3:.1f}ms baseline (limit {max_ratio}x)"
            )
            verdict = "  << REGRESSION"
        print(
            f"{kernel:<28} {seconds * 1e3:>8.1f}ms {baseline * 1e3:>8.1f}ms "
            f"{ratio:>6.2f}x{verdict}"
        )
    for kernel in sorted(set(measured) - set(baselines)):
        print(f"{kernel:<28} {measured[kernel] * 1e3:>8.1f}ms {'(no baseline)':>10}")

    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
