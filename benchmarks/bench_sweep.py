"""Scenario-sweep benchmarks (the planted-ground-truth fuzzing gate).

Times the ``repro sweep`` building blocks end to end:

* **generate** — sampling scenario specs (``generate_scenario``) alone; pure
  SeedSequence arithmetic, should be effectively free next to a pipeline run.
* **materialise** — turning specs into in-memory tables, the per-scenario
  fixed cost every sweep pays before discovery.
* **scenario-p50** — the headline kernel: the **p50 wall time of one full
  scored scenario** (materialise + discovery + ARDA + plant scoring) across
  ``--scenarios`` memory-layout scenarios.  This is what bounds how many
  scenarios CI can afford per sweep.

Also asserts the determinism contract the sweep's tests rely on: two runs of
the same ``(seed, config)`` must produce byte-identical deterministic JSON —
a benchmark run that breaks it fails loudly here too.

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_sweep.py --quick --json BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.core.config import SweepConfig
from repro.datasets.sqlgen import ScenarioSweep, generate_scenario, materialise_scenario
from repro.observability import MetricsRegistry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--scenarios", type=int, default=None, help="scenarios per sweep")
    parser.add_argument("--seed", type=int, default=0, help="sweep root seed")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    n_scenarios = args.scenarios if args.scenarios is not None else (4 if args.quick else 20)
    n_specs = 200
    results: list[dict] = []
    failures: list[str] = []

    start = time.perf_counter()
    specs = [generate_scenario(args.seed, i) for i in range(n_specs)]
    generate_s = time.perf_counter() - start
    results.append(
        {
            "bench": "generate",
            "seconds": generate_s / n_specs,
            "specs": n_specs,
            "total_s": generate_s,
        }
    )

    start = time.perf_counter()
    n_tables = 0
    for spec in specs[:n_scenarios]:
        n_tables += len(materialise_scenario(spec).repository.table_names)
    materialise_s = (time.perf_counter() - start) / n_scenarios
    results.append(
        {
            "bench": "materialise",
            "seconds": materialise_s,
            "scenarios": n_scenarios,
            "tables": n_tables,
        }
    )

    config = SweepConfig(n_scenarios=n_scenarios, seed=args.seed, layout="memory")
    sweep_result = ScenarioSweep(config, registry=MetricsRegistry()).run()
    p50 = statistics.median(score.elapsed_s for score in sweep_result.scores)
    results.append(
        {
            "bench": "scenario-p50",
            "seconds": p50,
            "scenarios": n_scenarios,
            "failed": sweep_result.n_failed,
            "mean_discovery_recall": sweep_result.mean_discovery_recall,
            "mean_uplift": sweep_result.mean_uplift,
            "sweep_s": sweep_result.elapsed_s,
        }
    )
    if not sweep_result.passed:
        failures.append(
            f"{sweep_result.n_failed}/{n_scenarios} scenarios failed their plant "
            "(discovery recall floor or planted-vs-decoy ranking)"
        )
    repeat = ScenarioSweep(config, registry=MetricsRegistry()).run()
    if repeat.deterministic_json() != sweep_result.deterministic_json():
        failures.append(
            "same (seed, config) produced different deterministic sweep JSON "
            "across two in-process runs"
        )

    print(f"\n{'bench':<16} {'seconds':>10}   extra")
    for row in results:
        extra = ", ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.items()
            if k not in ("bench", "seconds")
        )
        print(f"{row['bench']:<16} {row['seconds'] * 1e3:>8.1f}ms   {extra}")

    if args.json:
        args.json.write_text(json.dumps({"suite": "sweep", "results": results}, indent=2))
        print(f"\nwrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
