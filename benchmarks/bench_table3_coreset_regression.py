"""Table 3: sketching versus uniform sampling on the regression datasets.

Paper shape to reproduce: sketching is competitive with uniform sampling
(small % changes either way), with no consistently dominant strategy.
"""

from repro.evaluation.experiments import experiment_table3_coreset_regression

from conftest import BENCH_RIFS, BENCH_SCALE, print_rows, run_once


def test_table3_coreset_regression(benchmark):
    rows = run_once(
        benchmark,
        experiment_table3_coreset_regression,
        datasets=("taxi", "poverty"),
        selectors=("RIFS", "sparse regression", "f-test", "mutual info", "all features"),
        coreset_size=150,
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
    )
    print_rows("Table 3: sketching % change vs uniform (regression)", rows)
    assert all(row["strategy"] == "sketch" for row in rows)
