"""Benchmarks for the serving layer: artifact round trip and inference replay.

Trains a pipeline once over a disk-backed repository, then measures:

* **save / load** — serialising the fitted pipeline artifact and restoring it
  (estimator pages included).
* **predict-batch** — vectorized scoring of a >= 200k-row *unseen* batch in
  one shot; asserts the replay ran **without re-discovery** (zero profile
  cache activity — serving never profiles a table).
* **predict-stream** — the micro-batch streaming path over the same rows,
  served from a memory-mapped ``.tbl`` file; asserts its peak allocation is
  **bounded by the micro-batch size** (measured with ``tracemalloc``, which
  modern numpy reports into): the streamed peak must stay under half the
  full design-matrix footprint the batch path materialises.
* streamed and batch predictions are asserted **identical** (the unseen rows
  carry no missing categoricals, so batching cannot change imputation draws).

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_serving.py --quick --json BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.arda import ARDA
from repro.core.config import ARDAConfig
from repro.discovery.repository import DataRepository
from repro.relational.table import Table
from repro.serving import FittedPipeline


def build_base(rows: int, entities: int, seed: int = 0) -> Table:
    """A base table whose target partly depends on joinable foreign signal."""
    rng = np.random.default_rng(seed)
    entity = rng.integers(0, entities, size=rows)
    f0 = rng.normal(size=rows)
    f1 = rng.normal(size=rows)
    signal = np.sin(entity * 0.37)  # mirrored in the foreign table
    return Table.from_dict(
        {
            "entity_id": entity.astype(np.float64),
            "f0": f0,
            "f1": f1,
            "target": 2.0 * f0 - f1 + 3.0 * signal + rng.normal(scale=0.1, size=rows),
        },
        name="base",
    )


def build_foreign(entities: int, seed: int = 1) -> Table:
    """The signal table: entity key, the signal column, filler columns."""
    rng = np.random.default_rng(seed)
    ids = np.arange(entities)
    return Table.from_dict(
        {
            "entity_id": ids.astype(np.float64),
            "signal": np.sin(ids * 0.37),
            "filler_a": rng.normal(size=entities),
            "tag": [f"tag-{i % 25:02d}" for i in ids],
        },
        name="signal",
    )


def _timed(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--train-rows", type=int, default=20_000)
    parser.add_argument("--serve-rows", type=int, default=200_000)
    parser.add_argument("--entities", type=int, default=500)
    parser.add_argument("--batch-rows", type=int, default=20_000)
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    if args.quick:
        args.train_rows = min(args.train_rows, 5_000)
        args.serve_rows = min(args.serve_rows, 60_000)
        args.batch_rows = min(args.batch_rows, 15_000)
    repeats = 2 if args.quick else 3
    results: list[dict] = []
    failures: list[str] = []

    workdir = Path(tempfile.mkdtemp(prefix="bench_serving_"))
    try:
        lake = workdir / "lake"
        lake.mkdir()
        build_foreign(args.entities).save(lake / "signal.tbl")
        base = build_base(args.train_rows, args.entities)

        print(f"training on {args.train_rows} rows over disk-backed repository {lake}")
        config = ARDAConfig(repository_dir=str(lake))
        train_start = time.perf_counter()
        report = ARDA(config).augment_tables(base, None, target="target")
        train_s = time.perf_counter() - train_start
        pipeline = report.pipeline
        assert pipeline is not None and pipeline.joins, "training must keep the signal join"
        print(
            f"  trained in {train_s:.2f}s; kept {len(report.kept_columns)} columns "
            f"from {report.kept_tables}"
        )

        # -- save / load -------------------------------------------------------
        artifact = workdir / "model.pipeline"
        save_s, _ = _timed(lambda: pipeline.save(artifact), repeats)
        results.append(
            {"bench": "save", "seconds": save_s, "kb": artifact.stat().st_size / 1e3}
        )
        repo = DataRepository.open(lake)
        load_s, loaded = _timed(lambda: FittedPipeline.load(artifact, repository=repo), repeats)
        results.append({"bench": "load", "seconds": load_s})

        # -- unseen batch, memory-mapped --------------------------------------
        unseen = build_base(args.serve_rows, args.entities, seed=99).drop(["target"])
        unseen_path = workdir / "unseen.tbl"
        unseen.save(unseen_path)
        rows = Table.load(unseen_path)  # mmap-backed serving input

        repo.profile_cache.reset_counters()
        predict_s, batch_predictions = _timed(lambda: loaded.predict(rows), repeats)
        stats = repo.profile_cache.stats()
        if stats["misses"] or stats["hits"]:
            failures.append(
                f"predict touched the profile cache ({stats}) — serving must not re-discover"
            )
        results.append(
            {
                "bench": "predict-batch",
                "seconds": predict_s,
                "rows": args.serve_rows,
                "rows_per_s": args.serve_rows / predict_s,
            }
        )

        # -- streaming: timing -------------------------------------------------
        def run_stream():
            parts = [
                np.asarray(chunk, dtype=np.float64)
                for chunk in loaded.iter_predict(rows, batch_rows=args.batch_rows)
            ]
            return np.concatenate(parts)

        stream_s, stream_predictions = _timed(run_stream, repeats)
        if not np.array_equal(batch_predictions, stream_predictions):
            failures.append("streamed predictions differ from batch predictions")

        # -- streaming: bounded memory (untimed tracemalloc runs) --------------
        # the bound is relative: the streamed path must peak well below the
        # batch path, whose floor is the full (serve_rows x features) design
        # matrix the streaming mode exists to avoid materialising
        tracemalloc.start()
        loaded.predict(rows)
        _current, batch_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        tracemalloc.start()
        run_stream()
        _current, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        full_matrix_bytes = args.serve_rows * len(loaded.feature_names) * 8
        batch_matrix_bytes = args.batch_rows * len(loaded.feature_names) * 8
        print(
            f"  stream peak {stream_peak / 1e6:.1f}MB vs batch peak "
            f"{batch_peak / 1e6:.1f}MB (full matrix {full_matrix_bytes / 1e6:.1f}MB, "
            f"micro-batch matrix {batch_matrix_bytes / 1e6:.1f}MB)"
        )
        if stream_peak >= batch_peak / 2:
            failures.append(
                f"streaming peak {stream_peak / 1e6:.1f}MB is not bounded by the "
                f"micro-batch size (batch path peaks at {batch_peak / 1e6:.1f}MB; "
                f"streaming must stay under half of it)"
            )
        results.append(
            {
                "bench": "predict-stream",
                "seconds": stream_s,
                "rows": args.serve_rows,
                "batch_rows": args.batch_rows,
                "peak_mb": stream_peak / 1e6,
                "batch_peak_mb": batch_peak / 1e6,
                "full_matrix_mb": full_matrix_bytes / 1e6,
            }
        )

        print(f"\n{'bench':<18} {'seconds':>9}")
        for row in results:
            print(f"{row['bench']:<18} {row['seconds'] * 1e3:>7.1f}ms")
        if args.json:
            args.json.write_text(
                json.dumps(
                    {
                        "suite": "serving",
                        "train_rows": args.train_rows,
                        "serve_rows": args.serve_rows,
                        "results": results,
                        "failures": failures,
                    },
                    indent=2,
                )
            )
            print(f"wrote {args.json}")
        if failures:
            print("\nFAILURES:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
