"""Figure 5: soft-join strategies for time-series keys (Pickup and Taxi).

Paper shape to reproduce: two-way nearest-neighbour and nearest-neighbour soft
joins beat the plain hard join; time resampling helps the hard join on the
taxi-style data.
"""

from repro.evaluation.experiments import experiment_figure5_soft_joins

from conftest import BENCH_RIFS, BENCH_SCALE, print_rows, run_once


def test_figure5_soft_joins(benchmark):
    rows = run_once(
        benchmark,
        experiment_figure5_soft_joins,
        datasets=("pickup", "taxi"),
        selectors=("RIFS", "random forest", "f-test"),
        scale=BENCH_SCALE,
        rifs_options=BENCH_RIFS,
    )
    print_rows("Figure 5: holdout error by soft-join strategy", rows)
    strategies = {row["join_strategy"] for row in rows}
    assert strategies == {"Hard", "Time-Resampled", "Nearest", "2-way Nearest"}
