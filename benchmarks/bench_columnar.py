"""Microbenchmarks for the columnar storage refactor.

Compares the dictionary-encoded / zero-copy-view storage layer against
faithful copies of the legacy object-array kernels it replaced:

* **join-probe** — composite-key hash-join probe on categorical keys: legacy
  factorisation (string ``np.unique`` over every row) vs dictionary-remap
  factorisation (integer gathers only).
* **profile** — repository column profiling: legacy Python-loop null/distinct
  counting plus per-(value, seed) blake2b MinHash vs code-vectorised counting
  plus one-digest-per-entry MinHash.
* **take/filter** — coreset-style row sampling: legacy eager per-column gather
  vs lazy index-backed views that only materialise the touched key column
  (peak allocations measured with ``tracemalloc``).

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_columnar.py --quick
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.discovery.profiles import profile_table
from repro.relational.join import _match_first_occurrence
from repro.relational.table import Table

# ---------------------------------------------------------------------------
# legacy kernels (pre-refactor behaviour, kept verbatim for the comparison)
# ---------------------------------------------------------------------------


def _legacy_factorize_pair(left_values, right_values, left_is_cat):
    """Old ``_factorize_pair``: shared codes via np.unique over all rows."""
    left_valid = (
        np.array([v is not None for v in left_values], dtype=bool)
        if left_is_cat
        else ~np.isnan(left_values)
    )
    right_valid = (
        np.array([v is not None for v in right_values], dtype=bool)
        if left_is_cat
        else ~np.isnan(right_values)
    )
    left_kept = left_values[left_valid]
    right_kept = right_values[right_valid]
    if left_is_cat:
        left_kept = left_kept.astype("U")
        right_kept = right_kept.astype("U")
    _, inverse = np.unique(np.concatenate([left_kept, right_kept]), return_inverse=True)
    left_code = np.full(len(left_values), -1, dtype=np.int64)
    right_code = np.full(len(right_values), -1, dtype=np.int64)
    left_code[left_valid] = inverse[: len(left_kept)]
    right_code[right_valid] = inverse[len(left_kept):]
    return left_code, right_code


def _legacy_match_first_occurrence(left_arrays, right_arrays, cat_flags):
    """Old vectorised probe operating on decoded object arrays."""
    n_left = len(left_arrays[0])
    n_right = len(right_arrays[0])
    left_code = np.zeros(n_left, dtype=np.int64)
    right_code = np.zeros(n_right, dtype=np.int64)
    left_ok = np.ones(n_left, dtype=bool)
    right_ok = np.ones(n_right, dtype=bool)
    for left_values, right_values, is_cat in zip(left_arrays, right_arrays, cat_flags):
        codes_left, codes_right = _legacy_factorize_pair(left_values, right_values, is_cat)
        radix = int(max(codes_left.max(initial=-1), codes_right.max(initial=-1))) + 2
        left_ok &= codes_left >= 0
        right_ok &= codes_right >= 0
        left_code = left_code * radix + (codes_left + 1)
        right_code = right_code * radix + (codes_right + 1)
    match_index = np.full(n_left, -1, dtype=np.int64)
    right_rows = np.nonzero(right_ok)[0]
    if not len(right_rows):
        return match_index
    order = np.argsort(right_code[right_rows], kind="stable")
    sorted_keys = right_code[right_rows][order]
    sorted_rows = right_rows[order]
    is_first = np.ones(len(sorted_keys), dtype=bool)
    is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    unique_keys = sorted_keys[is_first]
    first_rows = sorted_rows[is_first]
    left_rows = np.nonzero(left_ok)[0]
    probe = left_code[left_rows]
    positions = np.searchsorted(unique_keys, probe)
    in_range = positions < len(unique_keys)
    clipped = np.clip(positions, 0, len(unique_keys) - 1)
    hit = in_range & (unique_keys[clipped] == probe)
    match_index[left_rows[hit]] = first_rows[clipped[hit]]
    return match_index


def _legacy_stable_hash(value: str, seed: int) -> int:
    digest = hashlib.blake2b(
        value.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


def _legacy_minhash(values, num_hashes: int = 64) -> np.ndarray:
    """Old MinHash: ``num_hashes`` blake2b digests per distinct value."""
    signature = np.full(num_hashes, np.iinfo(np.uint64).max, dtype=np.uint64)
    seen = set()
    for value in values:
        if value is None:
            continue
        text = str(value)
        if text in seen:
            continue
        seen.add(text)
        for i in range(num_hashes):
            h = _legacy_stable_hash(text, i)
            if h < signature[i]:
                signature[i] = h
    return signature


def _legacy_profile_column(values, is_cat, num_hashes=64, max_minhash_values=2000):
    """Old ``profile_column`` body: Python loops over the object array."""
    if is_cat:
        null_count = sum(1 for v in values if v is None)
        seen: dict = {}
        for value in values:
            if value is not None and value not in seen:
                seen[value] = True
        distinct = list(seen)
        minhash_values = distinct[:max_minhash_values]
    else:
        null_count = int(np.isnan(values).sum())
        distinct = list(np.unique(values[~np.isnan(values)]))
        minhash_values = [f"{float(v):.6g}" for v in distinct[:max_minhash_values]]
    signature = _legacy_minhash(minhash_values, num_hashes)
    return null_count, len(distinct), signature


# ---------------------------------------------------------------------------
# dataset
# ---------------------------------------------------------------------------


def build_tables(n_left: int, n_right: int, seed: int = 0) -> tuple[Table, Table]:
    """A base table and a foreign table sharing two categorical key columns."""
    rng = np.random.default_rng(seed)
    entities = [f"user-{i:07d}" for i in range(n_right)]
    regions = [f"region-{i:03d}" for i in range(97)]
    left = Table.from_dict(
        {
            "entity_id": [entities[i] for i in rng.integers(0, n_right, size=n_left)],
            "region": [regions[i] for i in rng.integers(0, len(regions), size=n_left)],
            "feature_num": rng.normal(size=n_left),
            "feature_cat": [f"tag-{i:04d}" for i in rng.integers(0, 5000, size=n_left)],
        },
        name="base",
    )
    right = Table.from_dict(
        {
            "entity_id": entities,
            "region": [regions[i] for i in rng.integers(0, len(regions), size=n_right)],
            "value": rng.normal(size=n_right),
            "label": [f"label-{i:03d}" for i in rng.integers(0, 500, size=n_right)],
        },
        name="foreign",
    )
    return left, right


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------


def bench_join_probe(left: Table, right: Table, repeats: int) -> dict:
    """Composite categorical-key probe: legacy string path vs code path."""
    keys = ["entity_id", "region"]
    left_cols = [left.column(k) for k in keys]
    right_cols = [right.column(k) for k in keys]
    # decode outside the timer: the legacy representation held these arrays
    left_arrays = [col.values for col in left_cols]
    right_arrays = [col.values for col in right_cols]
    cat_flags = [True, True]

    legacy = _timed(
        lambda: _legacy_match_first_occurrence(left_arrays, right_arrays, cat_flags), repeats
    )
    new = _timed(lambda: _match_first_occurrence(left_cols, right_cols), repeats)
    expected = _legacy_match_first_occurrence(left_arrays, right_arrays, cat_flags)
    got = _match_first_occurrence(left_cols, right_cols)
    assert np.array_equal(expected, got), "probe results diverged"
    return {"bench": "join-probe", "legacy_s": legacy, "new_s": new, "speedup": legacy / new}


def bench_profile(left: Table, right: Table, repeats: int) -> dict:
    """Repository profiling: legacy object loops vs dictionary profiling."""
    tables = [left, right]
    decoded = [
        [(col.values, col.ctype.value == "categorical") for col in t.columns()] for t in tables
    ]

    def run_legacy():
        for cols in decoded:
            for values, is_cat in cols:
                _legacy_profile_column(values, is_cat)

    def run_new():
        for t in tables:
            profile_table(t)

    legacy = _timed(run_legacy, repeats)
    new = _timed(run_new, repeats)
    return {"bench": "profile", "legacy_s": legacy, "new_s": new, "speedup": legacy / new}


def bench_take(left: Table, repeats: int) -> dict:
    """Coreset-style sampling: eager gather vs lazy view + key-only access.

    Mirrors what every coreset batch join does: sample base rows, then read
    only the join-key column for the probe.  Also reports tracemalloc peaks.
    """
    rng = np.random.default_rng(7)
    indices = np.sort(rng.choice(left.num_rows, size=max(1, left.num_rows // 50), replace=False))
    arrays = [col.values for col in left.columns()]

    def run_legacy():
        # old Table.take: every column gathered eagerly (objects for categoricals)
        gathered = [a[indices] for a in arrays]
        return gathered[0]

    def run_new():
        view = left.take(indices)
        return view.column("entity_id").codes

    legacy = _timed(run_legacy, repeats)
    new = _timed(run_new, repeats)

    tracemalloc.start()
    run_legacy()
    _, legacy_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    run_new()
    _, new_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "bench": "take/filter",
        "legacy_s": legacy,
        "new_s": new,
        "speedup": legacy / new,
        "legacy_peak_kb": legacy_peak / 1024,
        "new_peak_kb": new_peak / 1024,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--rows", type=int, default=None, help="override base-table row count")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    n_left = args.rows or (20_000 if args.quick else 200_000)
    n_right = max(1000, n_left // 4)
    repeats = 2 if args.quick else 3

    print(f"building tables: base={n_left} rows, foreign={n_right} rows")
    left, right = build_tables(n_left, n_right)
    results = [
        bench_join_probe(left, right, repeats),
        bench_profile(left, right, repeats),
        bench_take(left, repeats),
    ]
    print(f"\n{'bench':<12} {'legacy':>10} {'new':>10} {'speedup':>9}   extra")
    for row in results:
        extra = ""
        if "legacy_peak_kb" in row:
            extra = (
                f"peak alloc {row['legacy_peak_kb']:.0f} KiB -> {row['new_peak_kb']:.0f} KiB "
                f"({row['legacy_peak_kb'] / max(row['new_peak_kb'], 0.001):.0f}x less)"
            )
        print(
            f"{row['bench']:<12} {row['legacy_s'] * 1e3:>8.1f}ms {row['new_s'] * 1e3:>8.1f}ms "
            f"{row['speedup']:>8.1f}x   {extra}"
        )
    if args.json:
        args.json.write_text(json.dumps({"suite": "columnar", "results": results}, indent=2))
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
