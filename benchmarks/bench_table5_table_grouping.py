"""Table 5: table-join and full-materialisation versus the default budget-join.

Paper shape to reproduce: table-at-a-time joining almost always loses accuracy
versus budget-join (it misses co-predictors split across tables); full
materialisation is sometimes comparable but never much better, and can degrade
due to the extra noise columns.
"""

from repro.evaluation.experiments import experiment_table5_table_grouping

from conftest import BENCH_SCALE, print_rows, run_once


def test_table5_table_grouping(benchmark):
    rows = run_once(
        benchmark,
        experiment_table5_table_grouping,
        datasets=("school_s",),
        selectors=("RIFS", "random forest"),
        scale=BENCH_SCALE,
        rifs_options={"n_rounds": 1},
    )
    print_rows("Table 5: % score change vs budget-join", rows)
    assert {row["grouping"] for row in rows} == {"table", "full"}
