"""Table 4: the Tuple-Ratio rule as a pre-filter before feature selection.

Paper shape to reproduce: filtering removes a substantial number of tables and
speeds up the pipeline, at the cost of a small decrease in final score.
"""

from repro.evaluation.experiments import experiment_table4_tuple_ratio

from conftest import BENCH_SCALE, print_rows, run_once


def test_table4_tuple_ratio_prefilter(benchmark):
    rows = run_once(
        benchmark,
        experiment_table4_tuple_ratio,
        datasets=("poverty",),
        # the synthetic poverty scenario has foreign-key domains comparable to
        # the (scaled-down) base-table size, so the interesting tuple-ratio
        # thresholds sit below 1.0 rather than at the paper's 15-24 range
        taus=(0.2, 0.42, 1.0),
        scale=BENCH_SCALE,
        rifs_options={"n_rounds": 1},
    )
    print_rows("Table 4: TR-rule pre-filtering (score change, speed-up, tables removed)", rows)
    assert any(row["tables_removed"] > 0 for row in rows)
