"""Benchmarks for the resident serving server: latency and throughput.

Trains a pipeline once over a disk-backed repository (the same synthetic
workload as ``bench_serving.py``), starts a live
:class:`~repro.serving.server.PredictionServer` on an ephemeral port, and
measures real HTTP round trips:

* **requests-c1 / requests-c4 / requests-c16** — a fixed budget of
  single-row ``/predict`` requests issued by 1, 4 and 16 concurrent clients;
  the gated ``seconds`` is the wall-clock for the whole budget, and each
  row also reports client-observed **p50/p99 latency** and **rows/s**.
  Micro-batch coalescing is what keeps the concurrent legs from scaling
  wall-clock linearly with client count.
* **batch-1k** — one 1000-row batch ``/predict`` round trip.

Correctness is asserted alongside the timings: every served prediction must
be byte-identical to offline ``FittedPipeline.predict`` on the same rows.

Standalone on purpose (stdlib HTTP client, no extra dependencies) so CI can
smoke it:

    PYTHONPATH=src python benchmarks/bench_server.py --quick --json BENCH_server.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from bench_serving import build_base, build_foreign
from repro.core.arda import ARDA
from repro.core.config import ARDAConfig, ServingConfig
from repro.observability import MetricsRegistry
from repro.serving import FittedPipeline, PredictionServer


def _post(address: tuple[str, int], payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://{address[0]}:{address[1]}/predict",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        if response.status != 200:
            raise RuntimeError(f"predict returned HTTP {response.status}")
        return json.loads(response.read())


def run_client_level(
    address: tuple[str, int],
    rows: list[dict],
    expected: np.ndarray,
    clients: int,
    total_requests: int,
) -> dict:
    """Fire ``total_requests`` single-row requests from ``clients`` threads."""
    per_client = total_requests // clients
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        barrier.wait()
        for i in range(per_client):
            row_index = (index * per_client + i) % len(rows)
            start = time.perf_counter()
            try:
                doc = _post(address, rows[row_index])
            except Exception as exc:  # noqa: BLE001 - recorded and reported
                errors.append(repr(exc))
                return
            latencies[index].append(time.perf_counter() - start)
            if doc["prediction"] != expected[row_index]:
                errors.append(
                    f"row {row_index}: served {doc['prediction']} != "
                    f"offline {expected[row_index]}"
                )
                return

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise AssertionError(f"{len(errors)} client failures: {errors[:3]}")
    flat = np.sort(np.concatenate([np.asarray(lat) for lat in latencies]))
    served = clients * per_client
    return {
        "bench": f"requests-c{clients}",
        "seconds": wall,
        "requests": served,
        "p50_ms": float(np.quantile(flat, 0.50)) * 1e3,
        "p99_ms": float(np.quantile(flat, 0.99)) * 1e3,
        "rows_s": served / wall,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--train-rows", type=int, default=20_000)
    parser.add_argument("--entities", type=int, default=500)
    parser.add_argument("--requests", type=int, default=640,
                        help="single-row request budget per concurrency level")
    parser.add_argument("--workers", type=int, default=2, help="scorer worker threads")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    if args.quick:
        args.train_rows = min(args.train_rows, 5_000)
        args.requests = min(args.requests, 160)
    results: list[dict] = []

    workdir = Path(tempfile.mkdtemp(prefix="bench_server_"))
    try:
        lake = workdir / "lake"
        lake.mkdir()
        build_foreign(args.entities).save(lake / "signal.tbl")
        base = build_base(args.train_rows, args.entities)
        print(f"training on {args.train_rows} rows over disk-backed repository {lake}")
        report = ARDA(ARDAConfig(repository_dir=str(lake))).augment_tables(
            base, None, target="target"
        )
        pipeline = report.pipeline
        assert pipeline is not None and pipeline.joins, "training must keep the signal join"
        artifact = workdir / "model.pipeline"
        pipeline.save(artifact)

        serve_base = build_base(1024, args.entities, seed=9)
        rows = [serve_base.row(i) for i in range(serve_base.num_rows)]
        for row in rows:
            row.pop("target")
        from repro.discovery.repository import DataRepository
        from repro.relational.table import Table

        offline = FittedPipeline.load(artifact, repository=DataRepository.open(lake))
        types = {name: ctype for name, ctype in pipeline.base_schema}
        from repro.relational.schema import ColumnType

        expected = offline.predict(
            Table.from_rows(rows, types={k: ColumnType(v) for k, v in types.items()})
        )

        config = ServingConfig(
            port=0, workers=args.workers, max_wait_ms=1.0, reload_interval_s=0.0
        )
        with PredictionServer(
            artifact, repository=str(lake), config=config, registry=MetricsRegistry()
        ) as server:
            address = server.address
            print(f"server on http://{address[0]}:{address[1]} "
                  f"(workers={args.workers}, budget={args.requests} requests/level)")
            # one warmup round trip (connection setup, first join replay)
            _post(address, rows[0])

            for clients in (1, 4, 16):
                level = run_client_level(
                    address, rows, expected, clients, args.requests
                )
                results.append(level)
                print(
                    f"  {level['bench']:<13} {level['seconds'] * 1e3:8.1f}ms wall  "
                    f"p50={level['p50_ms']:6.2f}ms  p99={level['p99_ms']:6.2f}ms  "
                    f"{level['rows_s']:8.0f} rows/s"
                )

            batch_rows = rows[:1000]
            started = time.perf_counter()
            doc = _post(address, {"rows": batch_rows})
            batch_wall = time.perf_counter() - started
            assert np.array_equal(np.asarray(doc["predictions"]), expected[:1000]), (
                "batch predictions drifted from offline predict"
            )
            results.append(
                {
                    "bench": "batch-1k",
                    "seconds": batch_wall,
                    "requests": 1,
                    "rows_s": len(batch_rows) / batch_wall,
                }
            )
            print(
                f"  {'batch-1k':<13} {batch_wall * 1e3:8.1f}ms wall  "
                f"{len(batch_rows) / batch_wall:8.0f} rows/s"
            )
            snap = server.registry.snapshot()
            coalesced = snap["counters"]["server.requests"] / max(
                1.0, snap["counters"]["server.batches"]
            )
            print(f"  coalescing: {coalesced:.2f} requests/batch on average")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if args.json is not None:
        args.json.write_text(
            json.dumps({"suite": "server", "results": results}, indent=2)
        )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
