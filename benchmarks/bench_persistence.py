"""Benchmarks for the disk-backed repository and persistent profile cache.

Measures, on a generated repository of native binary tables:

* **save** — CSV-free ingestion throughput: writing every table in the
  binary columnar format (atomic temp-file + rename per table).
* **cold-open** — cataloguing the repository from file headers only; verifies
  via the persist layer's byte accounting that opening reads **< 5% of total
  file bytes** before any table access (the lazy-loading contract).
* **lazy-load vs eager-load** — materialising the large table memory-mapped
  (headers + string dictionaries only) vs fully read into RAM.
* **profile-cold vs profile-cached** — discovery startup on the large
  (>= 200k rows) table: loading + profiling from scratch vs serving the
  persisted profile sidecar; asserts the cached path is **>= 5x** faster.
* **save-chunked / load-chunked / chunked-scan** — the row-group layout vs the
  monolithic one: write cost, full materialisation cost, and the peak traced
  memory of a chunk-at-a-time scan (the out-of-core access pattern), reported
  in the ``peak_mb`` column.
* **streaming-join vs in-memory-join** — the pruned streaming hash join over
  a chunked file against ``left_join`` on the materialised table; asserts the
  outputs are **value-identical** and that zone maps prune **>= 50%** of the
  chunks on the selective-key workload, and reports both paths' peak memory.

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_persistence.py --quick --json BENCH_persistence.json
"""

from __future__ import annotations

import argparse
import json
import resource
import shutil
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.discovery.repository import DataRepository, PROFILE_SIDECAR, TABLE_SUFFIX
from repro.relational import persist
from repro.relational.join import left_join, streaming_left_join
from repro.relational.table import Table

BIG_TABLE = "events"


def build_small_table(index: int, rows: int) -> Table:
    """One catalog filler table: an id key, a tag column and two measures."""
    rng = np.random.default_rng(1000 + index)
    return Table.from_dict(
        {
            "entity_id": [f"user-{i:06d}" for i in rng.integers(0, rows * 4, size=rows)],
            "tag": [f"tag-{i:03d}" for i in rng.integers(0, 50, size=rows)],
            "measure_a": rng.normal(size=rows),
            "measure_b": rng.normal(size=rows),
        },
        name=f"aux_{index:03d}",
    )


def build_big_table(rows: int) -> Table:
    """The >= 200k-row table the profiling benchmark runs against."""
    rng = np.random.default_rng(7)
    return Table.from_dict(
        {
            "entity_id": [f"user-{i:06d}" for i in rng.integers(0, rows // 4, size=rows)],
            "label": [f"label-{i:04d}" for i in rng.integers(0, 5000, size=rows)],
            "f0": rng.normal(size=rows),
            "f1": rng.normal(size=rows),
            "f2": rng.uniform(size=rows),
            "f3": rng.normal(size=rows) ** 2,
            "target": rng.normal(size=rows),
        },
        name=BIG_TABLE,
    )


def _timed(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _timed_peak(fn, repeats: int):
    """Best wall-clock plus the peak *traced* allocation of the best run.

    tracemalloc covers Python and NumPy heap allocations but not mapped file
    pages, which is exactly the working-set definition the chunked layout is
    designed to bound (the OS page cache is reclaimable; the heap is not).
    """
    best, result, peak = float("inf"), None, 0
    for _ in range(repeats):
        tracemalloc.start()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        _, run_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if elapsed < best:
            best, peak = elapsed, run_peak
    return best, result, peak


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--tables", type=int, default=100, help="number of catalog tables")
    parser.add_argument("--rows", type=int, default=200_000, help="rows in the large table")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    small_rows = 2_000 if args.quick else 20_000
    repeats = 2 if args.quick else 3
    results: list[dict] = []
    failures: list[str] = []

    workdir = Path(tempfile.mkdtemp(prefix="bench_persistence_"))
    try:
        print(f"building {args.tables} x {small_rows}-row tables + 1 x {args.rows}-row table")
        tables = [build_small_table(i, small_rows) for i in range(args.tables)]
        big = build_big_table(args.rows)

        # -- save --------------------------------------------------------------
        def run_save():
            for table in tables:
                table.save(workdir / f"{table.name}{TABLE_SUFFIX}")
            big.save(workdir / f"{BIG_TABLE}{TABLE_SUFFIX}")

        save_s, _ = _timed(run_save, 1)
        total_bytes = sum(p.stat().st_size for p in workdir.glob(f"*{TABLE_SUFFIX}"))
        results.append(
            {
                "bench": "save",
                "seconds": save_s,
                "tables": args.tables + 1,
                "mb": total_bytes / 1e6,
                "mb_per_s": total_bytes / 1e6 / save_s,
            }
        )

        # -- cold-open: headers only ------------------------------------------
        def run_open():
            persist.reset_bytes_read()
            repo = DataRepository.open(workdir, load_profiles=False)
            return len(repo), persist.bytes_read()

        open_s, (n_catalogued, open_bytes) = _timed(run_open, repeats)
        read_fraction = open_bytes / total_bytes
        results.append(
            {
                "bench": "cold-open",
                "seconds": open_s,
                "tables": n_catalogued,
                "bytes_read": open_bytes,
                "total_bytes": total_bytes,
                "read_fraction": read_fraction,
            }
        )
        if read_fraction >= 0.05:
            failures.append(
                f"cold-open read {read_fraction:.1%} of file bytes (contract: < 5%)"
            )

        # -- lazy vs eager load of the large table ----------------------------
        big_path = workdir / f"{BIG_TABLE}{TABLE_SUFFIX}"
        lazy_s, _ = _timed(lambda: Table.load(big_path, mmap=True), repeats)
        eager_s, _ = _timed(lambda: Table.load(big_path, mmap=False), repeats)
        results.append({"bench": "lazy-load", "seconds": lazy_s})
        results.append(
            {"bench": "eager-load", "seconds": eager_s, "vs_lazy": eager_s / lazy_s}
        )

        # -- cold vs cached profiling (discovery startup) ---------------------
        def run_profile_cold():
            (workdir / PROFILE_SIDECAR).unlink(missing_ok=True)
            repo = DataRepository.open(workdir)
            return repo.profiles(BIG_TABLE)

        cold_s, _ = _timed(run_profile_cold, repeats)
        repo = DataRepository.open(workdir)
        repo.profiles(BIG_TABLE)
        repo.save_profiles()

        def run_profile_cached():
            cached_repo = DataRepository.open(workdir)
            profiles = cached_repo.profiles(BIG_TABLE)
            assert cached_repo.profile_cache.stats()["misses"] == 0, "sidecar was not hit"
            return profiles

        cached_s, _ = _timed(run_profile_cached, repeats)
        speedup = cold_s / cached_s
        results.append({"bench": "profile-cold", "seconds": cold_s, "rows": args.rows})
        results.append(
            {"bench": "profile-cached", "seconds": cached_s, "speedup_vs_cold": speedup}
        )
        if speedup < 5.0:
            failures.append(
                f"cached-profile startup only {speedup:.1f}x faster than cold (contract: >= 5x)"
            )

        # -- chunked layout: save / load / scan -------------------------------
        chunk_rows = max(args.rows // 16, 1)
        mono_path = workdir / "events_mono.tbl"
        chunked_path = workdir / "events_chunked.tbl"
        save_mono_s, _ = _timed(
            lambda: persist.write_table(big, mono_path, chunk_rows=0), repeats
        )
        save_chunked_s, _ = _timed(
            lambda: persist.write_table(big, chunked_path, chunk_rows=chunk_rows), repeats
        )
        results.append(
            {
                "bench": "save-chunked",
                "seconds": save_chunked_s,
                "chunks": 16,
                "vs_monolithic": save_chunked_s / save_mono_s,
            }
        )
        load_mono_s, _, load_mono_peak = _timed_peak(
            lambda: Table.load(mono_path, mmap=False), repeats
        )
        load_chunked_s, _, load_chunked_peak = _timed_peak(
            lambda: persist.open_chunks(chunked_path, mmap=False).table(), repeats
        )
        results.append(
            {
                "bench": "load-chunked",
                "seconds": load_chunked_s,
                "peak_mb": load_chunked_peak / 1e6,
                "vs_monolithic": load_chunked_s / load_mono_s,
            }
        )

        def run_scan():
            reader = persist.open_chunks(chunked_path, mmap=False)
            total = 0.0
            for part in reader.iter_chunks(columns=["f0"]):
                total += float(np.nansum(part.column("f0").values))
            return total

        scan_s, _, scan_peak = _timed_peak(run_scan, repeats)
        results.append(
            {
                "bench": "chunked-scan",
                "seconds": scan_s,
                "peak_mb": scan_peak / 1e6,
                "full_load_peak_mb": load_mono_peak / 1e6,
            }
        )
        if scan_peak >= load_mono_peak / 4:
            failures.append(
                f"chunk-at-a-time scan peaked at {scan_peak / 1e6:.1f} MB, "
                f"not clearly below the {load_mono_peak / 1e6:.1f} MB full load"
            )

        # -- streaming pruned join vs in-memory join --------------------------
        # sorted keys make chunk zones selective; the right side overlaps only
        # the first tenth of the key range, so >= 50% of chunks must prune
        join_rows = args.rows
        rng = np.random.default_rng(17)
        join_left = Table.from_dict(
            {
                "key": np.arange(join_rows, dtype=float),
                "a": rng.normal(size=join_rows),
                "b": rng.normal(size=join_rows),
            },
            name="join_left",
        )
        join_right = Table.from_dict(
            {
                "rkey": np.arange(join_rows // 10, dtype=float),
                "feature": rng.normal(size=join_rows // 10),
            },
            name="join_right",
        )
        join_path = workdir / "join_left.tbl"
        persist.write_table(join_left, join_path, chunk_rows=max(join_rows // 20, 1))

        def run_streaming_join():
            return streaming_left_join(
                persist.open_chunks(join_path), join_right, [("key", "rkey")]
            )

        stream_join_s, (streamed, stats), stream_join_peak = _timed_peak(
            run_streaming_join, repeats
        )
        mem_join_s, reference, mem_join_peak = _timed_peak(
            lambda: left_join(Table.load(join_path, mmap=False), join_right, [("key", "rkey")]),
            repeats,
        )
        results.append(
            {
                "bench": "streaming-join",
                "seconds": stream_join_s,
                "peak_mb": stream_join_peak / 1e6,
                "pruning_ratio": stats.pruning_ratio,
                "chunks_probed": stats.chunks_probed,
                "chunks_total": stats.chunks_total,
            }
        )
        results.append(
            {
                "bench": "in-memory-join",
                "seconds": mem_join_s,
                "peak_mb": mem_join_peak / 1e6,
                "vs_streaming": mem_join_s / stream_join_s,
            }
        )
        identical = streamed.column_names == reference.column_names and all(
            streamed.column(name) == reference.column(name)
            for name in reference.column_names
        )
        if not identical:
            failures.append("streaming join output differs from the in-memory join")
        if stats.pruning_ratio < 0.5:
            failures.append(
                f"zone maps pruned only {stats.pruning_ratio:.0%} of chunks on the "
                "selective-key join (contract: >= 50%)"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(f"\n{'bench':<16} {'seconds':>10}   extra")
    for row in results:
        extra = ", ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.items()
            if k not in ("bench", "seconds")
        )
        print(f"{row['bench']:<16} {row['seconds'] * 1e3:>8.1f}ms   {extra}")

    max_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"process peak RSS: {max_rss_mb:.0f} MB (informational; includes table building)")

    if args.json:
        args.json.write_text(json.dumps({"suite": "persistence", "results": results}, indent=2))
        print(f"\nwrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
