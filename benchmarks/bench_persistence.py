"""Benchmarks for the disk-backed repository and persistent profile cache.

Measures, on a generated repository of native binary tables:

* **save** — CSV-free ingestion throughput: writing every table in the
  binary columnar format (atomic temp-file + rename per table).
* **cold-open** — cataloguing the repository from file headers only; verifies
  via the persist layer's byte accounting that opening reads **< 5% of total
  file bytes** before any table access (the lazy-loading contract).
* **lazy-load vs eager-load** — materialising the large table memory-mapped
  (headers + string dictionaries only) vs fully read into RAM.
* **profile-cold vs profile-cached** — discovery startup on the large
  (>= 200k rows) table: loading + profiling from scratch vs serving the
  persisted profile sidecar; asserts the cached path is **>= 5x** faster.

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_persistence.py --quick --json BENCH_persistence.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.discovery.repository import DataRepository, PROFILE_SIDECAR, TABLE_SUFFIX
from repro.relational import persist
from repro.relational.table import Table

BIG_TABLE = "events"


def build_small_table(index: int, rows: int) -> Table:
    """One catalog filler table: an id key, a tag column and two measures."""
    rng = np.random.default_rng(1000 + index)
    return Table.from_dict(
        {
            "entity_id": [f"user-{i:06d}" for i in rng.integers(0, rows * 4, size=rows)],
            "tag": [f"tag-{i:03d}" for i in rng.integers(0, 50, size=rows)],
            "measure_a": rng.normal(size=rows),
            "measure_b": rng.normal(size=rows),
        },
        name=f"aux_{index:03d}",
    )


def build_big_table(rows: int) -> Table:
    """The >= 200k-row table the profiling benchmark runs against."""
    rng = np.random.default_rng(7)
    return Table.from_dict(
        {
            "entity_id": [f"user-{i:06d}" for i in rng.integers(0, rows // 4, size=rows)],
            "label": [f"label-{i:04d}" for i in rng.integers(0, 5000, size=rows)],
            "f0": rng.normal(size=rows),
            "f1": rng.normal(size=rows),
            "f2": rng.uniform(size=rows),
            "f3": rng.normal(size=rows) ** 2,
            "target": rng.normal(size=rows),
        },
        name=BIG_TABLE,
    )


def _timed(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--tables", type=int, default=100, help="number of catalog tables")
    parser.add_argument("--rows", type=int, default=200_000, help="rows in the large table")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    small_rows = 2_000 if args.quick else 20_000
    repeats = 2 if args.quick else 3
    results: list[dict] = []
    failures: list[str] = []

    workdir = Path(tempfile.mkdtemp(prefix="bench_persistence_"))
    try:
        print(f"building {args.tables} x {small_rows}-row tables + 1 x {args.rows}-row table")
        tables = [build_small_table(i, small_rows) for i in range(args.tables)]
        big = build_big_table(args.rows)

        # -- save --------------------------------------------------------------
        def run_save():
            for table in tables:
                table.save(workdir / f"{table.name}{TABLE_SUFFIX}")
            big.save(workdir / f"{BIG_TABLE}{TABLE_SUFFIX}")

        save_s, _ = _timed(run_save, 1)
        total_bytes = sum(p.stat().st_size for p in workdir.glob(f"*{TABLE_SUFFIX}"))
        results.append(
            {
                "bench": "save",
                "seconds": save_s,
                "tables": args.tables + 1,
                "mb": total_bytes / 1e6,
                "mb_per_s": total_bytes / 1e6 / save_s,
            }
        )

        # -- cold-open: headers only ------------------------------------------
        def run_open():
            persist.reset_bytes_read()
            repo = DataRepository.open(workdir, load_profiles=False)
            return len(repo), persist.bytes_read()

        open_s, (n_catalogued, open_bytes) = _timed(run_open, repeats)
        read_fraction = open_bytes / total_bytes
        results.append(
            {
                "bench": "cold-open",
                "seconds": open_s,
                "tables": n_catalogued,
                "bytes_read": open_bytes,
                "total_bytes": total_bytes,
                "read_fraction": read_fraction,
            }
        )
        if read_fraction >= 0.05:
            failures.append(
                f"cold-open read {read_fraction:.1%} of file bytes (contract: < 5%)"
            )

        # -- lazy vs eager load of the large table ----------------------------
        big_path = workdir / f"{BIG_TABLE}{TABLE_SUFFIX}"
        lazy_s, _ = _timed(lambda: Table.load(big_path, mmap=True), repeats)
        eager_s, _ = _timed(lambda: Table.load(big_path, mmap=False), repeats)
        results.append({"bench": "lazy-load", "seconds": lazy_s})
        results.append(
            {"bench": "eager-load", "seconds": eager_s, "vs_lazy": eager_s / lazy_s}
        )

        # -- cold vs cached profiling (discovery startup) ---------------------
        def run_profile_cold():
            (workdir / PROFILE_SIDECAR).unlink(missing_ok=True)
            repo = DataRepository.open(workdir)
            return repo.profiles(BIG_TABLE)

        cold_s, _ = _timed(run_profile_cold, repeats)
        repo = DataRepository.open(workdir)
        repo.profiles(BIG_TABLE)
        repo.save_profiles()

        def run_profile_cached():
            cached_repo = DataRepository.open(workdir)
            profiles = cached_repo.profiles(BIG_TABLE)
            assert cached_repo.profile_cache.stats()["misses"] == 0, "sidecar was not hit"
            return profiles

        cached_s, _ = _timed(run_profile_cached, repeats)
        speedup = cold_s / cached_s
        results.append({"bench": "profile-cold", "seconds": cold_s, "rows": args.rows})
        results.append(
            {"bench": "profile-cached", "seconds": cached_s, "speedup_vs_cold": speedup}
        )
        if speedup < 5.0:
            failures.append(
                f"cached-profile startup only {speedup:.1f}x faster than cold (contract: >= 5x)"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(f"\n{'bench':<16} {'seconds':>10}   extra")
    for row in results:
        extra = ", ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.items()
            if k not in ("bench", "seconds")
        )
        print(f"{row['bench']:<16} {row['seconds'] * 1e3:>8.1f}ms   {extra}")

    if args.json:
        args.json.write_text(json.dumps({"suite": "persistence", "results": results}, indent=2))
        print(f"\nwrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
