"""Corpus-scale discovery & join benchmarks (the out-of-core engine gate).

Generates a repository of ``--tables`` chunked candidate tables holding
``--rows`` rows in total and measures the three corpus-scale paths this
engine adds:

* **discovery-serial vs discovery-sharded** — cold join discovery (no profile
  sidecar, fresh catalog per run) on one context vs fanned out over a
  :class:`~repro.core.executor.JoinExecutor` as per-(table, chunk-range)
  profiling shards.  The reported ``seconds`` is the **p50** over the
  repeats.  Asserts the sharded candidate list — tables, key pairs, soft
  flags and float scores — is **identical** to the serial one (sharding may
  only change wall-clock time, never the ranking), and, on runners with
  >= 4 cores, that sharding is **>= 2x** faster.
* **spill-join** — a Grace-partitioned build-side-spill join whose right
  table is ~an order of magnitude larger than ``memory_budget``, against
  ``left_join`` on the fully materialised tables.  Asserts the outputs are
  **value-identical** and that the spill path's peak traced heap stays
  **bounded by the budget** (within a fixed partition-overhead multiple)
  while the in-memory reference scales with the data.
* **sorted-pruned-join** — ``rechunk(sort_by=key)`` on one corpus table, then
  a selective streaming join driven off the sorted chunks.  Asserts the
  sort-order marker survives in the header and that zone maps prune
  **>= 50%** of the chunks.

Standalone on purpose (no pytest-benchmark dependency) so CI can smoke it:

    PYTHONPATH=src python benchmarks/bench_corpus.py --quick --json BENCH_corpus.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.executor import make_executor
from repro.discovery.discovery import JoinDiscovery
from repro.discovery.repository import DataRepository
from repro.relational import persist
from repro.relational.join import (
    StreamJoinStats,
    iter_grace_left_join,
    left_join,
    streaming_left_join,
)
from repro.relational.table import Table

NUM_HASHES = 32


def build_corpus_table(index: int, rows: int) -> Table:
    """One candidate table: a shared entity key, a tag and two measures."""
    rng = np.random.default_rng(3000 + index)
    return Table.from_dict(
        {
            "entity_id": [f"user-{i:06d}" for i in rng.integers(0, rows * 2, size=rows)],
            "tag": [f"tag-{i:03d}" for i in rng.integers(0, 40, size=rows)],
            f"measure_{index % 7}": rng.normal(size=rows),
            "amount": rng.uniform(size=rows),
        },
        name=f"corpus_{index:03d}",
    )


def build_base_table(rows: int, key_domain: int) -> Table:
    """The base table discovery runs against; keys overlap the corpus domain."""
    rng = np.random.default_rng(11)
    return Table.from_dict(
        {
            "entity_id": [f"user-{i:06d}" for i in rng.integers(0, key_domain, size=rows)],
            "f0": rng.normal(size=rows),
            "target": rng.normal(size=rows),
        },
        name="base",
    )


def _timed_p50(fn, repeats: int):
    timings, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings), result


def _timed_peak(fn, repeats: int):
    """Best wall-clock plus the peak traced allocation of the best run."""
    best, result, peak = float("inf"), None, 0
    for _ in range(repeats):
        tracemalloc.start()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        _, run_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if elapsed < best:
            best, peak = elapsed, run_peak
    return best, result, peak


def candidate_fingerprint(candidates) -> list[tuple]:
    """Everything that defines a ranking: order, tables, keys, exact scores."""
    return [
        (
            c.foreign_table,
            tuple((k.base_column, k.foreign_column, k.soft) for k in c.keys),
            c.score,
        )
        for c in candidates
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes for CI smoke runs")
    parser.add_argument("--rows", type=int, default=None, help="total corpus rows")
    parser.add_argument("--tables", type=int, default=None, help="number of corpus tables")
    parser.add_argument("--json", type=Path, default=None, help="write results as JSON")
    args = parser.parse_args()
    total_rows = args.rows if args.rows is not None else (500_000 if args.quick else 10_000_000)
    num_tables = args.tables if args.tables is not None else (50 if args.quick else 200)
    rows_per_table = max(total_rows // num_tables, 64)
    chunk_rows = max(rows_per_table // 8, 32)
    repeats = 3
    cores = os.cpu_count() or 1
    results: list[dict] = []
    failures: list[str] = []

    workdir = Path(tempfile.mkdtemp(prefix="bench_corpus_"))
    try:
        print(
            f"building {num_tables} x {rows_per_table}-row corpus tables "
            f"({chunk_rows}-row chunks) on {cores} core(s)"
        )
        start = time.perf_counter()
        repo = DataRepository.open(workdir, load_profiles=False, chunk_rows=chunk_rows)
        for index in range(num_tables):
            repo.add(build_corpus_table(index, rows_per_table))
        build_s = time.perf_counter() - start
        base = build_base_table(
            min(rows_per_table, 20_000), key_domain=rows_per_table * 2
        )
        print(f"corpus built in {build_s:.1f}s")

        # -- discovery: serial vs chunk-sharded -------------------------------
        def run_discovery(backend: str | None):
            # a fresh catalog and no profile sidecar per run: every repeat
            # pays the full cold profiling cost the sharding is meant to hide
            cold = DataRepository.open(workdir, load_profiles=False, chunk_rows=chunk_rows)
            discovery = JoinDiscovery(num_hashes=NUM_HASHES)
            executor = make_executor(backend, cores) if backend else None
            try:
                return discovery.discover(base, cold, target="target", executor=executor)
            finally:
                if executor is not None:
                    executor.shutdown()

        serial_s, serial_candidates = _timed_p50(lambda: run_discovery(None), repeats)
        backend = "process" if cores >= 4 else "thread"
        sharded_s, sharded_candidates = _timed_p50(
            lambda: run_discovery(backend), repeats
        )
        speedup = serial_s / sharded_s
        results.append(
            {
                "bench": "discovery-serial",
                "seconds": serial_s,
                "tables": num_tables,
                "candidates": len(serial_candidates),
            }
        )
        results.append(
            {
                "bench": "discovery-sharded",
                "seconds": sharded_s,
                "backend": backend,
                "n_jobs": cores,
                "speedup_vs_serial": speedup,
            }
        )
        if candidate_fingerprint(serial_candidates) != candidate_fingerprint(
            sharded_candidates
        ):
            failures.append(
                "sharded discovery ranking differs from serial (determinism contract)"
            )
        if cores >= 4 and speedup < 2.0:
            failures.append(
                f"sharded discovery only {speedup:.2f}x faster than serial on "
                f"{cores} cores (contract: >= 2x on >= 4 cores)"
            )
        elif cores < 4:
            print(f"note: {cores} core(s) — the >= 2x sharding speedup gate is skipped")

        # -- build-side spill join vs in-memory join --------------------------
        spill_rows = min(total_rows // 2, 400_000)
        rng = np.random.default_rng(23)
        spill_left = Table.from_dict(
            {
                "key": rng.permutation(spill_rows).astype(float),
                "a": rng.normal(size=spill_rows),
            },
            name="spill_left",
        )
        spill_right = Table.from_dict(
            {
                "rkey": np.arange(spill_rows, dtype=float),
                "feat_a": rng.normal(size=spill_rows),
                "feat_b": rng.normal(size=spill_rows),
                "feat_c": rng.uniform(size=spill_rows),
            },
            name="spill_right",
        )
        spill_path = workdir / "spill_left_src.tbl"
        right_path = workdir / "spill_right_src.tbl"
        spill_chunk_rows = max(spill_rows // 16, 1)
        persist.write_table(spill_left, spill_path, chunk_rows=spill_chunk_rows)
        persist.write_table(spill_right, right_path, chunk_rows=spill_chunk_rows)
        # the right side estimates at rows x 8 bytes x 4 columns; a budget of
        # a tenth of that forces ~10 Grace partitions.  Both sides stream from
        # disk — the corpus-scale scenario where neither table fits in memory.
        budget = spill_rows * 8 * 4 // 10

        mem_s, reference, mem_peak = _timed_peak(
            lambda: left_join(
                Table.load(spill_path, mmap=False), spill_right, [("key", "rkey")]
            ),
            repeats,
        )

        def run_spill_join():
            # consume the join as a stream — the budget bound is a property of
            # the iterator, not of materialising the (budget-oblivious) output.
            # each yielded chunk is checked against the reference rows in place
            # (array views, no copies) and dropped.
            stats = StreamJoinStats()
            offset, ok = 0, True
            for chunk in iter_grace_left_join(
                persist.open_chunks(spill_path),
                persist.open_chunks(right_path),
                [("key", "rkey")],
                memory_budget=budget,
                spill_dir=workdir / "spill",
                stats=stats,
            ):
                stop = offset + chunk.num_rows
                ok = ok and chunk.column_names == reference.column_names
                for name in chunk.column_names:
                    ok = ok and np.array_equal(
                        chunk.column(name).values,
                        reference.column(name).values[offset:stop],
                        equal_nan=True,
                    )
                offset = stop
            return ok and offset == reference.num_rows, stats

        spill_s, (identical, spill_stats), spill_peak = _timed_peak(run_spill_join, repeats)
        results.append(
            {
                "bench": "spill-join",
                "seconds": spill_s,
                "rows": spill_rows,
                "partitions": spill_stats.spill_partitions,
                "spill_mb": spill_stats.spill_bytes_written / 1e6,
                "budget_mb": budget / 1e6,
                "peak_mb": spill_peak / 1e6,
                "in_memory_s": mem_s,
                "in_memory_peak_mb": mem_peak / 1e6,
            }
        )
        if not identical:
            failures.append("spill join output differs from the in-memory join")
        # one partition's build slice (~budget bytes) + one source chunk + the
        # output chunk are live at once; 8x covers gather scratch and the
        # float64 round-trips of the probe kernels, while the in-memory
        # reference holds entire tables and clearly breaks this bound
        if spill_peak > 8 * budget:
            failures.append(
                f"spill-join peak heap {spill_peak / 1e6:.1f} MB exceeds 8x the "
                f"{budget / 1e6:.1f} MB memory budget (not budget-bounded)"
            )
        if spill_peak >= mem_peak:
            failures.append(
                f"spill-join peak heap {spill_peak / 1e6:.1f} MB is not below the "
                f"in-memory join's {mem_peak / 1e6:.1f} MB"
            )

        # -- sort-ordered zone maps: rechunk + pruned streaming join ----------
        sort_rows = min(total_rows // 2, 400_000)
        sorted_left = Table.from_dict(
            {
                "key": rng.permutation(sort_rows).astype(float),
                "val": rng.normal(size=sort_rows),
            },
            name="sorted_left",
        )
        repo.add(sorted_left)
        repo.rechunk("sorted_left", chunk_rows=max(sort_rows // 20, 1), sort_by="key")
        header = repo._catalog["sorted_left"].header
        if header.sort_by != "key":
            failures.append("rechunk(sort_by=) did not record the sort-order marker")
        # selective probe: the build side covers only the first tenth of the
        # (now physically sorted) key range, so >= 50% of chunks must prune
        sorted_right = Table.from_dict(
            {
                "rkey": np.arange(sort_rows // 10, dtype=float),
                "feature": rng.normal(size=sort_rows // 10),
            },
            name="sorted_right",
        )

        def run_sorted_join():
            return streaming_left_join(
                repo.open_chunks("sorted_left"), sorted_right, [("key", "rkey")]
            )

        sorted_s, (_, sorted_stats) = _timed_p50(run_sorted_join, repeats)
        results.append(
            {
                "bench": "sorted-pruned-join",
                "seconds": sorted_s,
                "rows": sort_rows,
                "pruning_ratio": sorted_stats.pruning_ratio,
                "chunks_probed": sorted_stats.chunks_probed,
                "chunks_total": sorted_stats.chunks_total,
            }
        )
        if sorted_stats.pruning_ratio < 0.5:
            failures.append(
                f"sort-ordered zone maps pruned only {sorted_stats.pruning_ratio:.0%} "
                "of chunks on the selective join (contract: >= 50%)"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print(f"\n{'bench':<20} {'seconds':>10}   extra")
    for row in results:
        extra = ", ".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in row.items()
            if k not in ("bench", "seconds")
        )
        print(f"{row['bench']:<20} {row['seconds'] * 1e3:>8.1f}ms   {extra}")

    if args.json:
        args.json.write_text(json.dumps({"suite": "corpus", "results": results}, indent=2))
        print(f"\nwrote {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
