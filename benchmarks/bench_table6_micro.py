"""Table 6: feature selectors on the noise-injected micro benchmarks (Kraken, Digits).

Paper shape to reproduce: RIFS is at or near the top accuracy on both micro
benchmarks, clearly above weak filters, while remaining far cheaper than the
wrapper methods.
"""

from repro.evaluation.experiments import experiment_table6_micro

from conftest import BENCH_RIFS, print_rows, run_once


def test_table6_micro_benchmarks(benchmark):
    rows = run_once(
        benchmark,
        experiment_table6_micro,
        datasets=("kraken", "digits"),
        selectors=("RIFS", "random forest", "f-test", "mutual info", "relief"),
        noise_factor=4,
        rifs_options=BENCH_RIFS,
        samples_per_class=30,
    )
    print_rows("Table 6: micro-benchmark accuracy and selection time", rows)
    assert any(row["method"] == "RIFS" for row in rows)
