"""Ablations of RIFS design choices called out in DESIGN.md.

Covers the injection strategy (moment-matched vs standard distributions) and
the ensemble weight nu between the Random-Forest and Sparse-Regression
rankings.
"""

from repro.evaluation.experiments import (
    experiment_ablation_ensemble_weight,
    experiment_ablation_injection,
)

from conftest import BENCH_SCALE, print_rows, run_once


def test_ablation_injection_strategy(benchmark):
    rows = run_once(
        benchmark,
        experiment_ablation_injection,
        dataset_name="poverty",
        scale=BENCH_SCALE,
        rifs_rounds=2,
    )
    print_rows("Ablation: RIFS injection strategy", rows)
    assert {row["injection"] for row in rows} == {"moment_matched", "standard"}


def test_ablation_ensemble_weight(benchmark):
    rows = run_once(
        benchmark,
        experiment_ablation_ensemble_weight,
        dataset_name="poverty",
        nus=(0.0, 0.5, 1.0),
        scale=BENCH_SCALE,
        rifs_rounds=2,
    )
    print_rows("Ablation: RIFS ensemble weight nu", rows)
    assert len(rows) == 3
