"""Figure 6: how many features each selector keeps and what fraction of them are real.

Paper shape to reproduce: RIFS keeps a compact set dominated by real features
(high selectivity); filter methods either keep too much noise or discard real
features along with it.
"""

from repro.evaluation.experiments import experiment_figure6_noise_filtering

from conftest import BENCH_RIFS, print_rows, run_once


def test_figure6_noise_filtering(benchmark):
    rows = run_once(
        benchmark,
        experiment_figure6_noise_filtering,
        datasets=("kraken", "digits"),
        selectors=("RIFS", "random forest", "f-test", "mutual info"),
        noise_factor=4,
        rifs_options=BENCH_RIFS,
        samples_per_class=30,
    )
    print_rows("Figure 6: selected feature counts and fraction of real features", rows)
    rifs_rows = [row for row in rows if row["method"] == "RIFS"]
    assert all(row["fraction_real"] >= 0.0 for row in rifs_rows)
